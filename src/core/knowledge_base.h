#pragma once

#include <vector>

#include "src/core/trial.h"
#include "src/knobs/configuration.h"

namespace llamatune {

/// \brief One completed tuning iteration as stored in the knowledge
/// base (paper Fig. 1: the KB holds all evaluated samples).
struct IterationRecord {
  int iteration = 0;
  /// Optimizer-space point that was suggested.
  std::vector<double> point;
  /// Physical configuration it projected to.
  Configuration config;
  /// Raw measured metric (throughput req/s or p95 latency ms); for
  /// failed runs, the penalized score actually reported back.
  double measured = 0.0;
  /// Internal objective handed to the optimizer (maximize convention).
  double objective = 0.0;
  /// True for kCrashed outcomes (kept alongside `outcome` for the
  /// session-log CSV column and historical call sites).
  bool crashed = false;
  /// How the evaluation ended (crash / timeout / lost runs score the
  /// per-outcome penalty).
  TrialOutcome outcome = TrialOutcome::kOk;
  /// DBMS internal metrics from the run (RL state vector).
  std::vector<double> metrics;
};

/// \brief Record of all previously evaluated samples D = {(theta_j,
/// f(theta_j))}, updated after every evaluation.
class KnowledgeBase {
 public:
  void Add(IterationRecord record) { records_.push_back(std::move(record)); }

  int size() const { return static_cast<int>(records_.size()); }
  bool empty() const { return records_.empty(); }
  const IterationRecord& record(int i) const { return records_[i]; }
  const std::vector<IterationRecord>& records() const { return records_; }

  /// Index of the record with the highest internal objective (-1 when
  /// empty).
  int BestIndex() const;

  /// Best-so-far curve of the *measured* metric under the maximize
  /// convention of the internal objective (i.e. running max of
  /// objective, reported as measured values).
  std::vector<double> BestSoFarMeasured() const;

  /// Running max of the internal objective.
  std::vector<double> BestSoFarObjective() const;

 private:
  std::vector<IterationRecord> records_;
};

}  // namespace llamatune
