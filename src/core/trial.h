#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/serde.h"
#include "src/common/status.h"
#include "src/knobs/configuration.h"

namespace llamatune {

/// \brief One suggested configuration awaiting measurement — the unit
/// of the ask/tell protocol (TuningSession::Ask hands these out; the
/// caller runs the workload and answers with a TrialResult).
///
/// Lifecycle: a Trial is *pending* from the Ask that created it until
/// the Tell that matches its `id`. Every id is session-unique and
/// monotonically increasing in ask order. Trials asked together (one
/// AskBatch call) form a *round*; results commit to the optimizer in
/// round order, and within a round in trial-id order, regardless of
/// the order Tells arrive in — so a session's trajectory depends only
/// on the measured values, never on completion interleaving.
///
/// Pending trials are deliberately excluded from checkpoints: asking
/// again after TuningSession::Restore regenerates the same points
/// (suggestions are a pure function of the committed history and the
/// seeded RNG stream), only under fresh ids.
struct Trial {
  /// Session-unique handle, assigned in ask order starting at 1.
  int64_t id = 0;
  /// The optimizer-space point behind this trial (empty for the
  /// baseline trial, which is not an optimizer suggestion).
  std::vector<double> point;
  /// The physical DBMS configuration to apply and measure.
  Configuration config;
  /// True for the iteration-0 default-configuration trial. The first
  /// Ask of every session yields it; its result establishes the
  /// crash-penalty floor and is not reported to the optimizer as an
  /// observation (paper convention: synthetic low-dimensional spaces
  /// have no preimage for the default configuration).
  bool is_baseline = false;
  /// Measurement fidelity in (0, 1]: the fraction of a full-length
  /// evaluation this trial asks for. 1.0 (the default, and the only
  /// value non-racing sessions produce) is a full measurement; racing
  /// rungs hand out short runs with fidelity < 1. Objectives scale
  /// their run length by this factor (the DES backend scales
  /// max_transactions; see ObjectiveFunction::EvaluateAt).
  double fidelity = 1.0;
};

/// \brief How a trial's evaluation ended.
///
/// Wire/serde values are part of the protocol — never renumber, only
/// append. kOk/kCrashed keep the 0/1 values of the old boolean
/// `crashed` field, so pre-existing serialized results parse
/// unchanged.
enum class TrialOutcome : int {
  /// The workload ran to completion; `value` is the real measurement.
  kOk = 0,
  /// The DBMS failed to start or crashed under this configuration.
  kCrashed = 1,
  /// The evaluation exceeded its time budget and was aborted.
  kTimedOut = 2,
  /// The evaluator vanished (process death, network partition) and
  /// the measurement is unrecoverable.
  kLost = 3,
};

/// True for every non-kOk outcome: the session substitutes a penalty
/// for `value` and skips metrics.
inline bool IsFailure(TrialOutcome outcome) {
  return outcome != TrialOutcome::kOk;
}

/// \brief The measured outcome the caller reports for a Trial.
struct TrialResult {
  /// Must name a pending Trial's id; unknown or already-told ids are
  /// rejected by Tell with NotFound / AlreadyExists, expired ids with
  /// TrialExpired.
  int64_t trial_id = 0;
  /// The raw measured metric (throughput req/s, or latency ms for
  /// minimization targets). Ignored for failure outcomes — the
  /// session substitutes the per-outcome penalty (quarter-of-worst by
  /// default). Must be finite for kOk results; Tell rejects NaN/Inf
  /// with InvalidArgument.
  double value = 0.0;
  /// How the evaluation ended; any failure outcome scores the
  /// configured penalty instead of `value`.
  TrialOutcome outcome = TrialOutcome::kOk;
  /// Internal DBMS metrics sampled during the run (RL state vector);
  /// may be empty for optimizers that do not consume them.
  std::vector<double> metrics;
  /// Fidelity the measurement was taken at. Serialized as an optional
  /// trailing token, so results from pre-fidelity peers (wire spec 2,
  /// checkpoint v2, old WALs) decode as full-fidelity. The session
  /// treats the asked Trial's fidelity as authoritative and overrides
  /// this field on Tell, so a full-fidelity-only client can still
  /// answer racing trials.
  double fidelity = 1.0;

  bool crashed() const { return outcome == TrialOutcome::kCrashed; }
};

/// \name Bit-exact text serialization
///
/// Trials and results serialize to single-line, space-separated token
/// streams. Doubles are encoded with the bit-pattern codec from
/// src/common/serde.h, so a value survives a round trip bit-for-bit —
/// the property the session checkpoint format relies on.
/// @{

std::string SerializeTrial(const Trial& trial);
Result<Trial> ParseTrial(const std::string& line);

std::string SerializeTrialResult(const TrialResult& result);
Result<TrialResult> ParseTrialResult(const std::string& line);

/// @}

}  // namespace llamatune
