#include "src/core/running_stat.h"

#include <cmath>
#include <limits>
#include <sstream>

#include "src/common/serde.h"

namespace llamatune {

namespace {

/// One Neumaier step: adds `x` into the (sum, carry) pair, routing the
/// rounding error of whichever operand is smaller into the carry.
void NeumaierAdd(double x, double* sum, double* carry) {
  double t = *sum + x;
  if (std::abs(*sum) >= std::abs(x)) {
    *carry += (*sum - t) + x;
  } else {
    *carry += (x - t) + *sum;
  }
  *sum = t;
}

}  // namespace

void RunningStat::Push(double x) {
  if (count_ == 0) {
    shift_ = x;
    min_ = x;
    max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++count_;
  double d = x - shift_;
  NeumaierAdd(d, &sum_, &sum_c_);
  NeumaierAdd(d * d, &sum_sq_, &sum_sq_c_);
}

double RunningStat::Mean() const {
  if (count_ == 0) return 0.0;
  return shift_ + (sum_ + sum_c_) / static_cast<double>(count_);
}

double RunningStat::Variance() const {
  if (count_ < 2) return 0.0;
  double n = static_cast<double>(count_);
  double s = sum_ + sum_c_;
  double ss = sum_sq_ + sum_sq_c_;
  double var = (ss - s * s / n) / (n - 1.0);
  return var > 0.0 ? var : 0.0;
}

double RunningStat::CiHalfWidth(double z) const {
  if (count_ < 2) return std::numeric_limits<double>::infinity();
  return z * std::sqrt(Variance() / static_cast<double>(count_));
}

std::string RunningStat::Serialize() const {
  std::ostringstream out;
  out << "stat " << count_;
  for (double v : {shift_, sum_, sum_c_, sum_sq_, sum_sq_c_, min_, max_}) {
    out << ' ' << EncodeDoubleBits(v);
  }
  return out.str();
}

Result<RunningStat> RunningStat::Parse(const std::string& line) {
  std::istringstream in(line);
  std::string tag, count_tok;
  if (!(in >> tag >> count_tok) || tag != "stat") {
    return Status::InvalidArgument("expected 'stat' line, got: " + line);
  }
  Result<int64_t> count = ParseInt64(count_tok);
  if (!count.ok()) return count.status();
  if (*count < 0) {
    return Status::InvalidArgument("negative stat count: " + count_tok);
  }
  RunningStat stat;
  stat.count_ = *count;
  double* fields[] = {&stat.shift_,  &stat.sum_,    &stat.sum_c_,
                      &stat.sum_sq_, &stat.sum_sq_c_, &stat.min_,
                      &stat.max_};
  std::string token;
  for (double* field : fields) {
    if (!(in >> token)) {
      return Status::InvalidArgument("truncated stat line: " + line);
    }
    Result<double> value = DecodeDoubleBits(token);
    if (!value.ok()) return value.status();
    *field = *value;
  }
  return stat;
}

}  // namespace llamatune
