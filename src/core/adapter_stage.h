#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/knobs/config_space.h"
#include "src/knobs/knob.h"
#include "src/optimizer/search_space.h"

namespace llamatune {

/// \brief Everything a stage may need when it is bound into a pipeline.
struct StageContext {
  const ConfigSpace* config_space = nullptr;
  /// Per-session seed for randomized stages (frozen projection
  /// matrices). The pipeline forwards its own seed here so stage
  /// factories never hard-code one.
  uint64_t seed = 1;
};

/// \brief One composable link of an AdapterPipeline.
///
/// A pipeline maps optimizer points to physical configurations in two
/// phases:
///   1. a chain of point transforms ending in the *unit knob space*
///      ([0,1]^D, one coordinate per knob), and
///   2. a terminal per-knob decode from unit coordinates to physical
///      values (ConfigSpace::UnitToValue unless a stage overrides it).
///
/// A stage can participate in either phase (or both):
///   * Space shaping + point transform: Bind() receives the search
///     space exposed by the stage below it (closer to the DBMS) and
///     returns the space this stage exposes to the stage above it (or
///     the optimizer); Apply() maps a point of the exposed space into
///     the downstream space. BucketizerStage only reshapes the space;
///     ProjectionStage reshapes it and transforms points.
///   * Decode override: DecodesKnob()/DecodeKnob() let a stage take
///     over the unit->value mapping of individual knobs.
///     SpecialValueBiasStage uses this to bias hybrid knobs.
///
/// Basis stages (is_basis() == true) define the coordinate system the
/// chain bottoms out in and must sit innermost; at most one per
/// pipeline. Without one, the pipeline's base space is the raw unit
/// knob space (a continuous [0,1] dimension per knob).
class AdapterStage {
 public:
  virtual ~AdapterStage() = default;

  virtual std::string name() const = 0;

  /// True for stages that must be the innermost link (projections and
  /// the knob-native basis): their Apply() output is interpreted as
  /// unit knob coordinates, not as a point of another stage's space.
  virtual bool is_basis() const { return false; }

  /// Binds the stage. `downstream` is the space exposed by the stage
  /// below (for a basis stage: the unit knob space). Returns the space
  /// exposed upstream, or an error when the stage cannot sit here.
  virtual Result<SearchSpace> Bind(const StageContext& ctx,
                                   const SearchSpace& downstream) = 0;

  /// Maps a point of the exposed space into the downstream space.
  /// Space-shaping-only stages keep the identity default.
  virtual std::vector<double> Apply(const std::vector<double>& point) const {
    return point;
  }

  /// True when this stage overrides the unit->value decode of `spec`.
  virtual bool DecodesKnob(const KnobSpec& /*spec*/) const { return false; }

  /// Decodes a unit coordinate into a physical value for `spec`; only
  /// called when DecodesKnob(spec) is true.
  virtual double DecodeKnob(const KnobSpec& /*spec*/, double unit) const {
    return unit;
  }
};

}  // namespace llamatune
