#pragma once

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/space_adapter.h"

namespace llamatune {

/// \brief Tunes only a named subset of knobs, pinning every other knob
/// at its default value.
///
/// This is the "top-k important knobs" tuning mode of the paper's
/// motivation study (§2.3, Fig. 2): the optimizer sees one dimension
/// per selected knob; Project() fills the rest from the default
/// configuration.
class SubsetAdapter : public SpaceAdapter {
 public:
  /// Fails with NotFound if any name is missing from `config_space`.
  static Result<SubsetAdapter> Create(const ConfigSpace* config_space,
                                      const std::vector<std::string>& knobs);

  const SearchSpace& search_space() const override { return space_; }
  const ConfigSpace& config_space() const override { return *config_space_; }
  Configuration Project(const std::vector<double>& point) const override;
  std::string name() const override;

  const std::vector<int>& knob_indices() const { return indices_; }

 private:
  SubsetAdapter(const ConfigSpace* config_space, std::vector<int> indices);

  const ConfigSpace* config_space_;
  std::vector<int> indices_;
  SearchSpace space_;
};

}  // namespace llamatune
