#include "src/core/adapter_stages.h"

#include "src/common/math_util.h"
#include "src/projection/hesbo.h"
#include "src/projection/rembo.h"

namespace llamatune {

namespace {

// Mirrors IdentityAdapter: integer knobs with small ranges get an
// exact grid; larger ranges stay continuous.
constexpr int64_t kMaxExactGrid = 4096;

}  // namespace

// ---------------------------------------------------------------------------
// KnobNativeStage
// ---------------------------------------------------------------------------

SearchSpace KnobNativeStage::NativeSpace(const ConfigSpace& config_space) {
  std::vector<SearchDim> dims;
  dims.reserve(config_space.num_knobs());
  for (int i = 0; i < config_space.num_knobs(); ++i) {
    const KnobSpec& spec = config_space.knob(i);
    if (spec.type == KnobType::kCategorical) {
      dims.push_back(SearchDim::Categorical(
          static_cast<int64_t>(spec.categories.size())));
      continue;
    }
    int64_t buckets = 0;
    int64_t distinct = spec.NumDistinctValues();
    if (distinct > 0 && distinct <= kMaxExactGrid) buckets = distinct;
    dims.push_back(SearchDim::Continuous(0.0, 1.0, buckets));
  }
  return SearchSpace(std::move(dims));
}

Result<SearchSpace> KnobNativeStage::Bind(const StageContext& ctx,
                                          const SearchSpace& /*downstream*/) {
  if (ctx.config_space == nullptr) {
    return Status::InvalidArgument("KnobNativeStage: null config space");
  }
  config_space_ = ctx.config_space;
  return NativeSpace(*config_space_);
}

std::vector<double> KnobNativeStage::Apply(
    const std::vector<double>& point) const {
  std::vector<double> unit(point.size());
  for (size_t i = 0; i < point.size(); ++i) {
    const KnobSpec& spec = config_space_->knob(static_cast<int>(i));
    if (spec.type == KnobType::kCategorical) {
      // Category index -> bin midpoint, so the terminal
      // ConfigSpace::UnitToValue binning recovers the same index.
      double n = static_cast<double>(spec.categories.size());
      unit[i] = (spec.Canonicalize(point[i]) + 0.5) / n;
    } else {
      unit[i] = point[i];
    }
  }
  return unit;
}

// ---------------------------------------------------------------------------
// ProjectionStage
// ---------------------------------------------------------------------------

ProjectionStage::ProjectionStage(ProjectionKind kind, int target_dim)
    : kind_(kind), target_dim_(target_dim) {}

std::string ProjectionStage::name() const {
  return (kind_ == ProjectionKind::kHesbo ? "hesbo" : "rembo") +
         std::to_string(target_dim_);
}

Result<SearchSpace> ProjectionStage::Bind(const StageContext& ctx,
                                          const SearchSpace& /*downstream*/) {
  if (ctx.config_space == nullptr) {
    return Status::InvalidArgument("ProjectionStage: null config space");
  }
  int high_dim = ctx.config_space->num_knobs();
  if (target_dim_ <= 0 || target_dim_ > high_dim) {
    return Status::InvalidArgument(
        "ProjectionStage: target dimension " + std::to_string(target_dim_) +
        " outside [1, " + std::to_string(high_dim) + "]");
  }
  if (kind_ == ProjectionKind::kHesbo) {
    projection_ =
        std::make_unique<HesboProjection>(high_dim, target_dim_, ctx.seed);
  } else {
    projection_ =
        std::make_unique<RemboProjection>(high_dim, target_dim_, ctx.seed);
  }
  return projection_->LowDimSpace();
}

std::vector<double> ProjectionStage::Apply(
    const std::vector<double>& point) const {
  // Low-dim -> [-1,1]^D (clipped for REMBO, exact for HeSBO), then
  // normalized to unit knob coordinates.
  std::vector<double> high = projection_->Project(point);
  for (double& v : high) v = Clamp((v + 1.0) / 2.0, 0.0, 1.0);
  return high;
}

// ---------------------------------------------------------------------------
// SpecialValueBiasStage
// ---------------------------------------------------------------------------

SpecialValueBiasStage::SpecialValueBiasStage(double bias) : svb_(bias) {}

std::string SpecialValueBiasStage::name() const {
  return "svb" + FormatCompact(svb_.bias());
}

Result<SearchSpace> SpecialValueBiasStage::Bind(
    const StageContext& /*ctx*/, const SearchSpace& downstream) {
  if (svb_.bias() < 0.0 || svb_.bias() >= 1.0) {
    return Status::InvalidArgument("SpecialValueBiasStage: bias " +
                                   FormatCompact(svb_.bias()) +
                                   " outside [0, 1)");
  }
  return downstream;
}

bool SpecialValueBiasStage::DecodesKnob(const KnobSpec& spec) const {
  return svb_.bias() > 0.0 && spec.is_numeric() && spec.is_hybrid();
}

double SpecialValueBiasStage::DecodeKnob(const KnobSpec& spec,
                                         double unit) const {
  return svb_.Apply(spec, unit);
}

// ---------------------------------------------------------------------------
// BucketizerStage
// ---------------------------------------------------------------------------

BucketizerStage::BucketizerStage(int64_t max_unique_values)
    : max_unique_values_(max_unique_values) {}

std::string BucketizerStage::name() const {
  return "bucket" + std::to_string(max_unique_values_);
}

Result<SearchSpace> BucketizerStage::Bind(const StageContext& /*ctx*/,
                                          const SearchSpace& downstream) {
  if (max_unique_values_ < 2) {
    return Status::InvalidArgument(
        "BucketizerStage: need at least 2 values per dimension, got " +
        std::to_string(max_unique_values_));
  }
  return downstream.Bucketized(max_unique_values_);
}

}  // namespace llamatune
