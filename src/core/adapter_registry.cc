#include "src/core/adapter_registry.h"

#include <algorithm>
#include <cstdlib>

#include "src/core/adapter_stages.h"

namespace llamatune {

namespace {

Result<int64_t> ParseInt(const std::string& text, const std::string& what) {
  if (text.empty()) {
    return Status::InvalidArgument(what + ": missing integer argument");
  }
  char* end = nullptr;
  long long value = std::strtoll(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size()) {
    return Status::InvalidArgument(what + ": bad integer '" + text + "'");
  }
  return static_cast<int64_t>(value);
}

Result<double> ParseDouble(const std::string& text, const std::string& what) {
  if (text.empty()) {
    return Status::InvalidArgument(what + ": missing numeric argument");
  }
  char* end = nullptr;
  double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) {
    return Status::InvalidArgument(what + ": bad number '" + text + "'");
  }
  return value;
}

std::vector<std::string> SplitComponents(const std::string& key) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : key) {
    if (c == '+') {
      parts.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  parts.push_back(current);
  return parts;
}

}  // namespace

AdapterRegistry::AdapterRegistry() {
  RegisterStage("identity", [](const std::string& arg)
                    -> Result<std::unique_ptr<AdapterStage>> {
    if (!arg.empty()) {
      return Status::InvalidArgument("identity takes no argument, got '" +
                                     arg + "'");
    }
    return std::unique_ptr<AdapterStage>(new KnobNativeStage());
  });
  auto projection_factory = [](ProjectionKind kind) {
    return [kind](const std::string& arg)
               -> Result<std::unique_ptr<AdapterStage>> {
      Result<int64_t> dim = ParseInt(arg, "projection");
      if (!dim.ok()) return dim.status();
      return std::unique_ptr<AdapterStage>(
          new ProjectionStage(kind, static_cast<int>(*dim)));
    };
  };
  RegisterStage("hesbo", projection_factory(ProjectionKind::kHesbo));
  RegisterStage("rembo", projection_factory(ProjectionKind::kRembo));
  RegisterStage("svb", [](const std::string& arg)
                    -> Result<std::unique_ptr<AdapterStage>> {
    Result<double> bias = ParseDouble(arg, "svb");
    if (!bias.ok()) return bias.status();
    return std::unique_ptr<AdapterStage>(new SpecialValueBiasStage(*bias));
  });
  RegisterStage("bucket", [](const std::string& arg)
                    -> Result<std::unique_ptr<AdapterStage>> {
    Result<int64_t> k = ParseInt(arg, "bucket");
    if (!k.ok()) return k.status();
    return std::unique_ptr<AdapterStage>(new BucketizerStage(*k));
  });

  // The paper's default pipeline (§5: HeSBO d=16, 20% bias, K=10,000).
  RegisterAlias("llamatune", "hesbo16+svb0.2+bucket10000");
  RegisterAlias("vanilla", "identity");
}

AdapterRegistry& AdapterRegistry::Global() {
  static AdapterRegistry* registry = new AdapterRegistry();
  return *registry;
}

Status AdapterRegistry::RegisterStage(const std::string& prefix,
                                      StageFactory factory) {
  if (prefix.empty()) {
    return Status::InvalidArgument("empty stage prefix");
  }
  if (!stages_.emplace(prefix, std::move(factory)).second) {
    return Status::AlreadyExists("stage prefix '" + prefix +
                                 "' already registered");
  }
  return Status::OK();
}

Status AdapterRegistry::RegisterAlias(const std::string& alias,
                                      const std::string& key) {
  if (alias.empty()) {
    return Status::InvalidArgument("empty adapter alias");
  }
  if (aliases_.count(alias) > 0) {
    return Status::AlreadyExists("adapter alias '" + alias +
                                 "' already registered");
  }
  aliases_[alias] = key;
  return Status::OK();
}

Result<std::vector<std::unique_ptr<AdapterStage>>>
AdapterRegistry::ParseStages(const std::string& key) const {
  auto alias = aliases_.find(key);
  const std::string& expanded = alias == aliases_.end() ? key : alias->second;
  if (expanded.empty()) {
    return Status::InvalidArgument("empty adapter key");
  }

  std::vector<std::unique_ptr<AdapterStage>> wrappers;
  std::vector<std::unique_ptr<AdapterStage>> basis;
  for (const std::string& component : SplitComponents(expanded)) {
    // Longest registered prefix wins, so "bucket10" cannot be shadowed
    // by a later hypothetical "buck" stage.
    const StageFactory* factory = nullptr;
    size_t best_len = 0;
    for (const auto& [prefix, f] : stages_) {
      if (prefix.size() > best_len && component.size() >= prefix.size() &&
          component.compare(0, prefix.size(), prefix) == 0) {
        factory = &f;
        best_len = prefix.size();
      }
    }
    if (factory == nullptr) {
      std::string known;
      for (const auto& [prefix, f] : stages_) {
        if (!known.empty()) known += ", ";
        known += prefix;
      }
      return Status::NotFound("unknown adapter stage '" + component +
                              "' in key '" + key + "' (known stages: " +
                              known + ")");
    }
    Result<std::unique_ptr<AdapterStage>> stage =
        (*factory)(component.substr(best_len));
    if (!stage.ok()) return stage.status();
    if ((*stage)->is_basis()) {
      basis.push_back(std::move(stage).ValueOrDie());
    } else {
      wrappers.push_back(std::move(stage).ValueOrDie());
    }
  }
  if (basis.size() > 1) {
    return Status::InvalidArgument(
        "adapter key '" + key +
        "' names more than one basis stage (projection/identity)");
  }
  // Canonical order: wrappers as written, basis innermost.
  for (auto& b : basis) wrappers.push_back(std::move(b));
  return wrappers;
}

Result<std::unique_ptr<SpaceAdapter>> AdapterRegistry::Create(
    const std::string& key, const ConfigSpace* config_space,
    uint64_t seed) const {
  Result<std::vector<std::unique_ptr<AdapterStage>>> stages =
      ParseStages(key);
  if (!stages.ok()) return stages.status();
  Result<std::unique_ptr<AdapterPipeline>> pipeline = AdapterPipeline::Create(
      config_space, std::move(stages).ValueOrDie(), seed);
  if (!pipeline.ok()) return pipeline.status();
  return std::unique_ptr<SpaceAdapter>(std::move(pipeline).ValueOrDie());
}

std::vector<std::string> AdapterRegistry::StagePrefixes() const {
  std::vector<std::string> names;
  names.reserve(stages_.size());
  for (const auto& [prefix, f] : stages_) names.push_back(prefix);
  return names;
}

std::vector<std::string> AdapterRegistry::Aliases() const {
  std::vector<std::string> names;
  names.reserve(aliases_.size());
  for (const auto& [alias, key] : aliases_) names.push_back(alias);
  return names;
}

}  // namespace llamatune
