#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/adapter_stage.h"
#include "src/core/space_adapter.h"

namespace llamatune {

/// \brief A SpaceAdapter composed of chainable AdapterStages.
///
/// Stages are ordered optimizer-side first (outermost to innermost).
/// The optimizer tunes the outermost stage's exposed space; Project()
/// snaps the suggested point onto that space, runs it through every
/// stage's Apply() down to unit knob coordinates, and decodes each
/// coordinate to a physical value — via ConfigSpace::UnitToValue
/// unless a stage claimed the knob (special-value biasing).
///
/// The full LlamaTune pipeline (paper §5, Fig. 8) is
///   {BucketizerStage(10000), ProjectionStage(HeSBO, 16),
///    SpecialValueBiasStage(0.2)}
/// and reproduces the legacy LlamaTuneAdapter bit-for-bit; the vanilla
/// baseline is {KnobNativeStage()}.
class AdapterPipeline : public SpaceAdapter {
 public:
  /// Binds the stages against `config_space`. Fails when a basis stage
  /// is not innermost, more than one basis stage is given, or any
  /// stage rejects its position. `seed` feeds randomized stages (the
  /// frozen projection matrix).
  static Result<std::unique_ptr<AdapterPipeline>> Create(
      const ConfigSpace* config_space,
      std::vector<std::unique_ptr<AdapterStage>> stages, uint64_t seed = 1);

  const SearchSpace& search_space() const override { return space_; }
  const ConfigSpace& config_space() const override { return *config_space_; }
  Configuration Project(const std::vector<double>& point) const override;

  /// "Pipeline(bucket10000|hesbo16|svb0.2)" — stage names outermost
  /// first; doubles as the canonical registry key when joined by '+'.
  std::string name() const override;

  int num_stages() const { return static_cast<int>(stages_.size()); }
  const AdapterStage& stage(int i) const { return *stages_[i]; }
  uint64_t seed() const { return seed_; }

 private:
  AdapterPipeline(const ConfigSpace* config_space,
                  std::vector<std::unique_ptr<AdapterStage>> stages,
                  uint64_t seed);

  Status Bind();

  const ConfigSpace* config_space_;
  std::vector<std::unique_ptr<AdapterStage>> stages_;
  uint64_t seed_;
  SearchSpace space_;
  /// Per-knob decode override (nullptr -> ConfigSpace::UnitToValue).
  std::vector<const AdapterStage*> decoder_;
};

}  // namespace llamatune
