#include "src/core/session_log.h"

#include <cstdio>
#include <sstream>

#ifndef _WIN32
#include <unistd.h>
#endif

namespace llamatune {

namespace {

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream in(line);
  while (std::getline(in, field, ',')) fields.push_back(field);
  if (!line.empty() && line.back() == ',') fields.push_back("");
  return fields;
}

}  // namespace

std::string SerializeKnowledgeBase(const ConfigSpace& space,
                                   const KnowledgeBase& kb) {
  std::ostringstream out;
  out.precision(17);
  out << "iteration,objective,measured,crashed";
  for (int i = 0; i < space.num_knobs(); ++i) {
    out << "," << space.knob(i).name;
  }
  out << "\n";
  for (int r = 0; r < kb.size(); ++r) {
    const IterationRecord& record = kb.record(r);
    out << record.iteration << "," << record.objective << ","
        << record.measured << "," << (record.crashed ? 1 : 0);
    for (int i = 0; i < record.config.size(); ++i) {
      out << "," << record.config[i];
    }
    out << "\n";
  }
  return out.str();
}

Result<KnowledgeBase> ParseKnowledgeBase(const ConfigSpace& space,
                                         const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty knowledge base file");
  }
  std::vector<std::string> header = SplitCsvLine(line);
  int expected = 4 + space.num_knobs();
  if (static_cast<int>(header.size()) != expected) {
    return Status::InvalidArgument("header has " +
                                   std::to_string(header.size()) +
                                   " fields, expected " +
                                   std::to_string(expected));
  }
  for (int i = 0; i < space.num_knobs(); ++i) {
    if (header[4 + i] != space.knob(i).name) {
      return Status::FailedPrecondition(
          "knob catalog mismatch at column '" + header[4 + i] +
          "' (expected '" + space.knob(i).name + "')");
    }
  }

  KnowledgeBase kb;
  int line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::vector<std::string> fields = SplitCsvLine(line);
    if (static_cast<int>(fields.size()) != expected) {
      return Status::InvalidArgument("row " + std::to_string(line_number) +
                                     " has wrong field count");
    }
    IterationRecord record;
    try {
      record.iteration = std::stoi(fields[0]);
      record.objective = std::stod(fields[1]);
      record.measured = std::stod(fields[2]);
      record.crashed = fields[3] == "1";
      std::vector<double> values(space.num_knobs());
      for (int i = 0; i < space.num_knobs(); ++i) {
        values[i] = std::stod(fields[4 + i]);
      }
      record.config = Configuration(std::move(values));
    } catch (const std::exception&) {
      return Status::InvalidArgument("row " + std::to_string(line_number) +
                                     " has a malformed number");
    }
    Status valid = space.ValidateConfiguration(record.config);
    if (!valid.ok()) return valid;
    kb.Add(std::move(record));
  }
  return kb;
}

Status SaveKnowledgeBase(const ConfigSpace& space, const KnowledgeBase& kb,
                         const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::Internal("cannot open '" + path + "' for writing");
  }
  std::string text = SerializeKnowledgeBase(space, kb);
  size_t written = std::fwrite(text.data(), 1, text.size(), file);
  std::fclose(file);
  if (written != text.size()) {
    return Status::Internal("short write to '" + path + "'");
  }
  return Status::OK();
}

Result<KnowledgeBase> LoadKnowledgeBase(const ConfigSpace& space,
                                        const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::string text;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    text.append(buffer, n);
  }
  std::fclose(file);
  return ParseKnowledgeBase(space, text);
}

Status SaveCheckpointFile(const std::string& checkpoint,
                          const std::string& path) {
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "w");
  if (file == nullptr) {
    return Status::Internal("cannot open '" + tmp + "' for writing");
  }
  size_t written = std::fwrite(checkpoint.data(), 1, checkpoint.size(), file);
  bool flushed = std::fflush(file) == 0;
#ifndef _WIN32
  // fflush only reaches the kernel page cache; without fsync a crash
  // shortly after the rename can commit the name change before the
  // data blocks, replacing the previous good checkpoint with a
  // truncated file — the exact failure this API promises to prevent.
  flushed = flushed && fsync(fileno(file)) == 0;
#endif
  std::fclose(file);
  if (written != checkpoint.size() || !flushed) {
    std::remove(tmp.c_str());
    return Status::Internal("short write to '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename '" + tmp + "' to '" + path + "'");
  }
  return Status::OK();
}

Result<std::string> LoadCheckpointFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::string text;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    text.append(buffer, n);
  }
  std::fclose(file);
  return text;
}

}  // namespace llamatune
