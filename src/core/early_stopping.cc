#include "src/core/early_stopping.h"

#include <cmath>

namespace llamatune {

bool EarlyStoppingPolicy::Update(double best_so_far) {
  if (!started_) {
    reference_ = best_so_far;
    started_ = true;
    since_improvement_ = 0;
    return false;
  }
  double needed = std::abs(reference_) * min_improvement_pct_ / 100.0;
  if (best_so_far - reference_ >= needed) {
    // Aggregate improvement large enough: reset the patience window.
    reference_ = best_so_far;
    since_improvement_ = 0;
    return false;
  }
  ++since_improvement_;
  return since_improvement_ >= patience_;
}

void EarlyStoppingPolicy::Reset() {
  reference_ = -std::numeric_limits<double>::infinity();
  since_improvement_ = 0;
  started_ = false;
}

}  // namespace llamatune
