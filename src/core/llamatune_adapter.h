#pragma once

#include <cstdint>
#include <memory>

#include "src/core/space_adapter.h"
#include "src/lowdim/special_value_bias.h"
#include "src/projection/projection.h"

namespace llamatune {

/// \brief Which random projection generates the synthetic space.
enum class ProjectionKind { kHesbo, kRembo };

/// \brief The full LlamaTune pipeline configuration (paper §5).
/// Defaults are the paper's: HeSBO with d = 16, 20% special-value
/// bias, bucketization to K = 10,000 unique values per dimension.
struct LlamaTuneOptions {
  ProjectionKind projection = ProjectionKind::kHesbo;
  int target_dim = 16;
  double special_value_bias = 0.20;
  int64_t bucket_values = 10000;
  /// Seed for the (once-generated, then frozen) projection matrix.
  uint64_t projection_seed = 1;
};

/// \brief LlamaTune's unified tuning pipeline (paper §5, Fig. 8).
///
/// The optimizer sees a bucketized low-dimensional space X'_d. A
/// suggested point p is processed as:
///   1. project p to the scaled knob space [-1,1]^D (HeSBO or REMBO,
///      frozen random matrix),
///   2. normalize each coordinate to [0,1],
///   3. apply special-value biasing — hybrid knobs only,
///   4. re-scale to each knob's physical range (categoricals binned,
///      integers rounded).
class LlamaTuneAdapter : public SpaceAdapter {
 public:
  LlamaTuneAdapter(const ConfigSpace* config_space, LlamaTuneOptions options);

  const SearchSpace& search_space() const override { return space_; }
  const ConfigSpace& config_space() const override { return *config_space_; }
  Configuration Project(const std::vector<double>& point) const override;
  std::string name() const override;

  const Projection& projection() const { return *projection_; }
  const LlamaTuneOptions& options() const { return options_; }

 private:
  const ConfigSpace* config_space_;
  LlamaTuneOptions options_;
  std::unique_ptr<Projection> projection_;
  SpecialValueBias svb_;
  SearchSpace space_;
};

}  // namespace llamatune
