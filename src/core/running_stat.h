#pragma once

#include <string>

#include "src/common/status.h"

namespace llamatune {

/// \brief Streaming mean/variance/confidence-interval accumulator —
/// the per-candidate quality statistic behind the racing stage.
///
/// Numerics: values accumulate as Neumaier-compensated sums of
/// (x - shift) and (x - shift)^2, where the shift is the first value
/// pushed. The shift keeps the squared sums small for the narrow,
/// far-from-zero distributions DES throughput produces, and the
/// compensation makes the running sums match a two-pass batch oracle
/// (same shift) to 1 ulp — pinned in tests/racing_test.cc. Everything
/// is plain double arithmetic in push order, so the accumulator is
/// bit-deterministic for a given value sequence and serializes
/// bit-exactly via the EncodeDoubleBits codec.
class RunningStat {
 public:
  /// Adds one observation.
  void Push(double x);

  /// Number of observations pushed.
  int64_t count() const { return count_; }
  /// Sample mean; 0 when empty.
  double Mean() const;
  /// Unbiased sample variance (n-1 denominator, clamped at 0);
  /// 0 when count() < 2.
  double Variance() const;
  /// Half-width of the normal-approximation confidence interval at
  /// critical value `z` (e.g. 1.96 for 95%). Infinity when count() < 2
  /// — a candidate measured once cannot be eliminated on CI overlap.
  double CiHalfWidth(double z) const;
  double Min() const { return min_; }
  double Max() const { return max_; }

  /// \name Bit-exact text serialization (single line, space-separated;
  /// doubles as bit patterns). Round-tripping restores the exact
  /// accumulator state, so checkpointed races resume bit-for-bit.
  /// @{
  std::string Serialize() const;
  static Result<RunningStat> Parse(const std::string& line);
  /// @}

 private:
  int64_t count_ = 0;
  double shift_ = 0.0;
  double sum_ = 0.0;        ///< compensated sum of (x - shift)
  double sum_c_ = 0.0;      ///< Neumaier carry for sum_
  double sum_sq_ = 0.0;     ///< compensated sum of (x - shift)^2
  double sum_sq_c_ = 0.0;   ///< Neumaier carry for sum_sq_
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace llamatune
