#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "src/core/early_stopping.h"
#include "src/core/knowledge_base.h"
#include "src/core/objective.h"
#include "src/core/space_adapter.h"
#include "src/optimizer/optimizer.h"

namespace llamatune {

/// \brief Session-level settings (paper §6.1 defaults).
struct SessionOptions {
  /// Tuning iterations after the default-config baseline run.
  int num_iterations = 100;
  /// Crash penalty: crashed configurations score (worst seen) / this
  /// factor under maximization (and worst * factor when minimizing).
  double crash_penalty_divisor = 4.0;
  /// Configurations suggested and evaluated per step. 1 reproduces the
  /// classic sequential loop unchanged. Larger batches draw
  /// Optimizer::SuggestBatch and evaluate concurrently across
  /// ObjectiveFunction clones (independent simulator instances);
  /// objectives without Clone() support fall back to sequential
  /// evaluation within the batch.
  ///
  /// Best suited to model-based optimizers (SMAC, GP-BO, random):
  /// their suggestions depend only on observed history. Stateful
  /// step-by-step tuners (DDPG's metric-state transitions,
  /// BestConfig's rounds) assume a strict suggest/observe alternation
  /// and lose fidelity under batching — keep batch_size == 1 for them
  /// unless they override SuggestBatch/ObserveBatch batch-aware.
  int batch_size = 1;
  /// Executor cap for parallel batch evaluation over the shared
  /// thread pool: 0 = pool size (all cores), 1 = evaluate the batch
  /// on the calling thread, k = at most k concurrent evaluations.
  /// Results are recorded in suggestion order regardless, so a fixed
  /// (seed, batch size) session is bit-for-bit reproducible at any
  /// thread count.
  int num_threads = 0;
  /// Optional early-stopping policy (appendix, Table 11).
  std::optional<EarlyStoppingPolicy> early_stopping;
};

/// \brief Result of a full tuning session.
struct SessionResult {
  KnowledgeBase kb;
  /// Measured metric of the default configuration (iteration 0).
  double default_performance = 0.0;
  /// Best measured metric found (max objective convention).
  double best_performance = 0.0;
  Configuration best_config;
  /// Iterations actually executed (< num_iterations when stopped
  /// early).
  int iterations_run = 0;
  /// Cumulative wall-clock seconds the optimizer spent in Suggest +
  /// Observe (the paper's Table 10 "optimizer overhead"; excludes the
  /// workload runs themselves).
  double optimizer_seconds = 0.0;
};

/// \brief The experiment controller: drives the iterative tuning loop
/// of paper Fig. 1 (suggest -> project -> run workload -> record).
///
/// Conventions matching the paper's setup:
///  * The default configuration is evaluated first ("iteration 0") to
///    establish the crash-penalty baseline and the RL initial state; it
///    is *not* reported to the optimizer as an observation because
///    synthetic low-dim spaces have no preimage for it.
///  * Crashed runs are scored as a quarter of the worst performance
///    seen so far.
///  * Latency targets are negated internally so optimizers always
///    maximize.
class TuningSession {
 public:
  TuningSession(ObjectiveFunction* objective, SpaceAdapter* adapter,
                Optimizer* optimizer, SessionOptions options = {});

  /// Runs the full loop and returns the populated result.
  SessionResult Run();

  /// Runs a single iteration (exposed for incremental drivers/tests).
  /// Returns false when the budget or early stopping ended the session.
  bool Step();

  const KnowledgeBase& knowledge_base() const { return kb_; }
  int iterations_run() const { return iterations_run_; }

 private:
  double Penalized(bool maximize) const;
  bool StepBaseline();
  bool StepBatch();
  /// Converts a raw evaluation into the internal maximize-convention
  /// objective and the reported measured value, applying the crash
  /// penalty and updating the penalty floor.
  void ScoreResult(const EvalResult& result, double* objective_value,
                   double* measured);
  /// Appends the iteration to the knowledge base and updates the
  /// iteration budget / early-stopping state.
  void AppendRecord(const std::vector<double>& point,
                    const Configuration& config, const EvalResult& result,
                    double objective_value, double measured);

  ObjectiveFunction* objective_;
  SpaceAdapter* adapter_;
  Optimizer* optimizer_;
  SessionOptions options_;

  KnowledgeBase kb_;
  /// Independent objective instances for parallel batch evaluation
  /// (lazily built on the first batched step; empty when the
  /// objective does not support Clone()).
  std::vector<std::unique_ptr<ObjectiveFunction>> clone_pool_;
  bool clone_pool_built_ = false;
  double default_performance_ = 0.0;
  double worst_objective_ = 0.0;  // worst (maximize-convention) value
  bool baseline_done_ = false;
  bool stopped_ = false;
  int iterations_run_ = 0;
  double optimizer_seconds_ = 0.0;
};

}  // namespace llamatune
