#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "src/core/early_stopping.h"
#include "src/core/knowledge_base.h"
#include "src/core/objective.h"
#include "src/core/space_adapter.h"
#include "src/optimizer/optimizer.h"

namespace llamatune {

/// \brief Session-level settings (paper §6.1 defaults).
struct SessionOptions {
  /// Tuning iterations after the default-config baseline run.
  int num_iterations = 100;
  /// Crash penalty: crashed configurations score (worst seen) / this
  /// factor under maximization (and worst * factor when minimizing).
  double crash_penalty_divisor = 4.0;
  /// Optional early-stopping policy (appendix, Table 11).
  std::optional<EarlyStoppingPolicy> early_stopping;
};

/// \brief Result of a full tuning session.
struct SessionResult {
  KnowledgeBase kb;
  /// Measured metric of the default configuration (iteration 0).
  double default_performance = 0.0;
  /// Best measured metric found (max objective convention).
  double best_performance = 0.0;
  Configuration best_config;
  /// Iterations actually executed (< num_iterations when stopped
  /// early).
  int iterations_run = 0;
  /// Cumulative wall-clock seconds the optimizer spent in Suggest +
  /// Observe (the paper's Table 10 "optimizer overhead"; excludes the
  /// workload runs themselves).
  double optimizer_seconds = 0.0;
};

/// \brief The experiment controller: drives the iterative tuning loop
/// of paper Fig. 1 (suggest -> project -> run workload -> record).
///
/// Conventions matching the paper's setup:
///  * The default configuration is evaluated first ("iteration 0") to
///    establish the crash-penalty baseline and the RL initial state; it
///    is *not* reported to the optimizer as an observation because
///    synthetic low-dim spaces have no preimage for it.
///  * Crashed runs are scored as a quarter of the worst performance
///    seen so far.
///  * Latency targets are negated internally so optimizers always
///    maximize.
class TuningSession {
 public:
  TuningSession(ObjectiveFunction* objective, SpaceAdapter* adapter,
                Optimizer* optimizer, SessionOptions options = {});

  /// Runs the full loop and returns the populated result.
  SessionResult Run();

  /// Runs a single iteration (exposed for incremental drivers/tests).
  /// Returns false when the budget or early stopping ended the session.
  bool Step();

  const KnowledgeBase& knowledge_base() const { return kb_; }
  int iterations_run() const { return iterations_run_; }

 private:
  double Penalized(bool maximize) const;

  ObjectiveFunction* objective_;
  SpaceAdapter* adapter_;
  Optimizer* optimizer_;
  SessionOptions options_;

  KnowledgeBase kb_;
  double default_performance_ = 0.0;
  double worst_objective_ = 0.0;  // worst (maximize-convention) value
  bool baseline_done_ = false;
  bool stopped_ = false;
  int iterations_run_ = 0;
  double optimizer_seconds_ = 0.0;
};

}  // namespace llamatune
