#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/early_stopping.h"
#include "src/core/knowledge_base.h"
#include "src/core/objective.h"
#include "src/core/running_stat.h"
#include "src/core/space_adapter.h"
#include "src/core/trial.h"
#include "src/optimizer/optimizer.h"

namespace llamatune {

/// \brief Successive-halving racing over measurement fidelities.
///
/// A racing session replaces each single full-length measurement with
/// a *race*: `cohort` candidate configurations drawn from the
/// optimizer at once, run through `rungs` rounds of increasingly long
/// measurements. Rung r measures every surviving candidate at
/// fidelity min_fidelity^((rungs-1-r)/(rungs-1)) — a geometric ladder
/// from min_fidelity up to exactly 1.0 at the final rung. After each
/// non-final rung, candidates whose confidence interval (normal
/// approximation at critical value `ci_z` over their accumulated
/// per-rung measurements) lies entirely below the best candidate's
/// lower bound are eliminated, and the survivor count is capped at
/// ceil(alive / eta) by mean rank (ties broken by draw order). The
/// race commits exactly ONE observation to the optimizer: the
/// champion's final-rung full-fidelity measurement. One race therefore
/// costs one unit of the session's iteration budget while spending
/// roughly sum_r alive_r * fidelity_r units of simulated work —
/// the ≤0.5x-work property bench/bm_racing.cc pins.
///
/// Determinism: candidates are drawn once per race (Suggest when
/// cohort == 1, SuggestBatch otherwise), rung results commit in draw
/// order whatever the Tell interleaving, and elimination compares the
/// bit-exact accumulated statistics — so survivors, champion, and the
/// committed trajectory are a pure function of (seed, measured
/// values), independent of thread count. With cohort == 1, rungs == 1
/// the race degenerates bit-for-bit to the non-racing session.
struct RacingOptions {
  /// Candidates drawn per race. 1 disables the tournament (every race
  /// is a single candidate measured at full fidelity in the last
  /// rung).
  int cohort = 8;
  /// Measurement rounds per race; the final rung always runs at
  /// fidelity 1.0. 1 means a single full-fidelity round.
  int rungs = 3;
  /// Fidelity of the first rung, in (0, 1].
  double min_fidelity = 0.25;
  /// Survivor cap factor: after each non-final rung at most
  /// ceil(alive / eta) candidates advance.
  double eta = 2.0;
  /// Critical value for the CI-overlap elimination rule (1.96 = 95%).
  /// 0 disables CI elimination (pure rank halving).
  double ci_z = 1.96;

  Status Validate() const;
};

/// \brief Session-level settings (paper §6.1 defaults).
struct SessionOptions {
  /// Tuning iterations after the default-config baseline run. 0 is
  /// legal (baseline-only session); negative is rejected by
  /// Validate().
  int num_iterations = 100;
  /// Crash penalty: crashed configurations score (worst seen) / this
  /// factor under maximization (and worst * factor when minimizing).
  double crash_penalty_divisor = 4.0;
  /// Penalty divisors for the other failure outcomes (same
  /// quarter-of-worst convention): a timed-out evaluation, and one
  /// whose evaluator vanished (kLost). Defaults match the crash
  /// penalty, so a session that never distinguishes outcomes behaves
  /// exactly as before.
  double timeout_penalty_divisor = 4.0;
  double lost_penalty_divisor = 4.0;
  /// Deadline for pending (asked, untold) trials in milliseconds;
  /// 0 disables. Expiry is never implicit: it happens only when the
  /// caller invokes ExpireOverdue(now_ms) (the server's maintenance
  /// sweep does) or Expire(id). An expired trial's budget is
  /// reclaimed, it is dropped from its round without an observation,
  /// and a late Tell for it fails with the typed TrialExpired status.
  int64_t pending_deadline_ms = 0;
  /// Configurations suggested and evaluated per step. 1 reproduces the
  /// classic sequential loop unchanged. Larger batches draw
  /// Optimizer::SuggestBatch and evaluate concurrently across
  /// ObjectiveFunction clones (independent simulator instances);
  /// objectives without Clone() support fall back to sequential
  /// evaluation within the batch.
  ///
  /// Best suited to model-based optimizers (SMAC, GP-BO, random):
  /// their suggestions depend only on observed history. SMAC and the
  /// "gpbo-qei"/"gpbo-lp" registry keys are batch-aware — they
  /// diversify within a round instead of re-asking the model the same
  /// question n times (see docs/registry-keys.md). Stateful
  /// step-by-step tuners (DDPG's metric-state transitions,
  /// BestConfig's rounds) assume a strict suggest/observe alternation
  /// and lose fidelity under batching — keep batch_size == 1 for them
  /// unless they override SuggestBatch/ObserveBatch batch-aware.
  int batch_size = 1;
  /// Executor cap for parallel batch evaluation over the shared
  /// thread pool: 0 = pool size (all cores), 1 = evaluate the batch
  /// on the calling thread, k = at most k concurrent evaluations.
  /// Results are recorded in suggestion order regardless, so a fixed
  /// (seed, batch size) session is bit-for-bit reproducible at any
  /// thread count.
  int num_threads = 0;
  /// Optional early-stopping policy (appendix, Table 11).
  std::optional<EarlyStoppingPolicy> early_stopping;
  /// Optional multi-fidelity racing stage (see RacingOptions). When
  /// set, every post-baseline iteration is a race: Ask/AskBatch hand
  /// out the current rung's short-run trials, and one observation (the
  /// champion's full-fidelity measurement) commits per race. Racing
  /// trials are exempt from pending-deadline expiry — a rung must
  /// complete for the race to stay deterministic.
  std::optional<RacingOptions> racing;

  /// Rejects out-of-domain settings (batch_size < 1, num_threads < 0,
  /// num_iterations < 0, crash_penalty_divisor <= 0). TuningSession
  /// checks this on construction and surfaces the error from the first
  /// Ask/Tell (Run/Step refuse to start); TunerBuilder::Build fails
  /// up front.
  Status Validate() const;
};

/// \brief Result of a full tuning session.
struct SessionResult {
  KnowledgeBase kb;
  /// Measured metric of the default configuration (iteration 0).
  double default_performance = 0.0;
  /// Best measured metric found (max objective convention).
  double best_performance = 0.0;
  Configuration best_config;
  /// Iterations actually executed (< num_iterations when stopped
  /// early).
  int iterations_run = 0;
  /// Cumulative wall-clock seconds the optimizer spent in Suggest +
  /// Observe (the paper's Table 10 "optimizer overhead"; excludes the
  /// workload runs themselves).
  double optimizer_seconds = 0.0;
  /// Total simulated measurement work committed, in full-run units:
  /// each committed result contributes its fidelity (1.0 for ordinary
  /// trials and the baseline; rung trials their short-run fraction).
  /// The denominator of the racing stage's ≤0.5x-work target.
  double simulated_work = 0.0;
};

/// \brief The experiment controller of paper Fig. 1, redesigned around
/// an ask/tell protocol: the session owns suggestion, projection,
/// scoring and bookkeeping, while *evaluation* may be driven either by
/// the session itself (Run/Step, when an ObjectiveFunction is
/// attached) or by the caller (Ask/Tell, for external systems the
/// tuner cannot call into).
///
/// ## Protocol
///
///  1. The first Ask() (or AskBatch()) yields the *baseline* trial —
///     the default configuration, paper "iteration 0". No further
///     trials are handed out until its result is told: the baseline
///     establishes the crash-penalty floor.
///  2. Every subsequent Ask()/AskBatch(n) draws suggestions from the
///     optimizer, projects them through the adapter, and hands back
///     pending Trials. AskBatch clamps n to the remaining iteration
///     budget (counting already-pending trials).
///  3. Tell()/TellBatch() report measurements. Results may arrive in
///     any order; the session buffers them and *commits* strictly in
///     round order (a round = the trials of one Ask/AskBatch call),
///     and within a round in trial-id order. A round reaches the
///     optimizer only when its last result arrives. This makes the
///     trajectory — crash penalties, best-so-far curves, early
///     stopping, optimizer state — a pure function of (seed, measured
///     values), independent of completion interleaving.
///
/// Run()/Step() are reimplemented on top of this protocol and preserve
/// the historical push-model behavior bit-for-bit (pinned by
/// tests/ask_tell_test.cc): Step asks one round, evaluates it against
/// the attached objective (in parallel across objective clones when
/// batch_size > 1), and tells the results.
///
/// ## Checkpointing
///
/// Save() serializes the committed trajectory — session scalars, the
/// per-round ask structure, each trial's measured outcome, and the
/// optimizer-visible history — to a versioned text format. Restore()
/// rebuilds the state on a *freshly constructed* session wired with
/// the same components and seeds by replaying the trajectory through
/// the protocol: the optimizer re-derives its model and RNG position
/// deterministically, and Restore fails loudly if the replayed
/// suggestions do not reproduce the recorded history bit-for-bit
/// (e.g. the stack was rebuilt with a different seed or registry key).
/// Pending (asked-but-untold) trials are not part of a checkpoint;
/// re-asking after Restore regenerates the same points under fresh
/// ids. After Restore, the remaining trajectory is bit-for-bit
/// identical to the uninterrupted session's.
///
/// Conventions matching the paper's setup:
///  * The default configuration is evaluated first ("iteration 0") to
///    establish the crash-penalty baseline and the RL initial state; it
///    is *not* reported to the optimizer as an observation because
///    synthetic low-dim spaces have no preimage for it.
///  * Crashed runs are scored as a quarter of the worst performance
///    seen so far.
///  * Latency targets are negated internally so optimizers always
///    maximize.
///
/// TuningSession is not thread-safe; concurrent access must be
/// serialized by the caller (TuningService holds one lock per
/// session).
class TuningSession {
 public:
  /// Attached session: the objective supplies the config space, the
  /// maximize convention, and evaluation for Run()/Step().
  TuningSession(ObjectiveFunction* objective, SpaceAdapter* adapter,
                Optimizer* optimizer, SessionOptions options = {});

  /// Detached session: ask/tell only — the caller owns evaluation.
  /// `config_space` supplies the default configuration for the
  /// baseline trial; `maximize` fixes the objective convention
  /// (false = latency-style, values negated internally). Run()/Step()
  /// are unavailable (Step returns false, Run returns an empty
  /// result).
  TuningSession(const ConfigSpace* config_space, bool maximize,
                SpaceAdapter* adapter, Optimizer* optimizer,
                SessionOptions options = {});

  /// \name Ask/tell protocol
  /// @{

  /// Requests the next trial (a round of one; commits via
  /// Optimizer::Observe). Fails with FailedPrecondition while the
  /// baseline is outstanding, OutOfRange when the iteration budget is
  /// exhausted (counting pending trials) or the session stopped early,
  /// or the SessionOptions validation error.
  Result<Trial> Ask();

  /// Requests up to `n` trials as one round (commits via
  /// Optimizer::ObserveBatch). n is clamped to the remaining budget;
  /// the optimizer may return fewer. Same failure modes as Ask(),
  /// plus InvalidArgument for n < 1.
  Result<std::vector<Trial>> AskBatch(int n);

  /// Reports one measurement. Unknown ids fail with NotFound,
  /// duplicate tells with AlreadyExists, expired ids with
  /// TrialExpired, and a non-finite (NaN/Inf) value on a kOk result
  /// with InvalidArgument. Commit happens when a round completes (see
  /// class comment).
  Status Tell(const TrialResult& result);

  /// Tells several results; stops at the first error.
  Status TellBatch(const std::vector<TrialResult>& results);

  /// Expires one pending trial: its budget is reclaimed, the trial is
  /// dropped from its round without an observation, and a later Tell
  /// for it fails with TrialExpired. Idempotent on already-expired
  /// ids. Fails with NotFound for unknown ids, AlreadyExists for
  /// committed ones, and FailedPrecondition for the baseline trial or
  /// a trial whose result is already buffered.
  Status Expire(int64_t trial_id);

  /// Expires every non-baseline pending trial that was asked more
  /// than SessionOptions::pending_deadline_ms before `now_ms` (Unix
  /// millis) and has no buffered result; returns the expired ids (the
  /// server appends them to its trial WAL). No-op (empty) when
  /// pending_deadline_ms == 0.
  std::vector<int64_t> ExpireOverdue(int64_t now_ms);

  /// The pending (asked, result not yet buffered) trials in id order —
  /// the server surfaces these so a retrying client can adopt a trial
  /// whose Ask reply was lost instead of asking again (an extra ask
  /// would advance the optimizer's draw sequence).
  std::vector<Trial> PendingSnapshot() const;

  /// True once the session will hand out no further trials (budget
  /// exhausted or early-stopped).
  bool finished() const;

  /// Trials asked but not yet told.
  int pending_trials() const { return static_cast<int>(pending_.size()); }

  /// The id the next Ask will assign. After Restore this equals
  /// (committed trials, expired included) + 1 — the cursor the
  /// server's WAL replay uses to skip ask records the checkpoint
  /// already covers.
  int64_t next_trial_id() const { return next_trial_id_; }

  /// @}

  /// \name Checkpointing
  /// @{

  /// Serializes the committed trajectory (versioned text). Trials of
  /// rounds that have not fully committed are excluded — their
  /// measurements can be re-told after Restore against re-asked
  /// trials, which carry the same points.
  std::string Save() const;

  /// Replays `checkpoint` into this session. Requires a fresh session
  /// (no baseline told, nothing pending) wired with the same options
  /// and identically seeded components as the saver; fails with
  /// FailedPrecondition / InvalidArgument / Internal otherwise (see
  /// class comment).
  Status Restore(const std::string& checkpoint);

  /// @}

  /// Runs the full loop against the attached objective and returns the
  /// populated result.
  SessionResult Run();

  /// Runs a single round (exposed for incremental drivers/tests).
  /// Returns false when the budget or early stopping ended the
  /// session, or when no objective is attached.
  bool Step();

  /// The populated result so far (same shape Run() returns); usable on
  /// ask/tell-driven sessions at any point.
  SessionResult Snapshot() const;

  const KnowledgeBase& knowledge_base() const { return kb_; }
  int iterations_run() const { return iterations_run_; }
  const Status& init_status() const { return init_status_; }

  /// Measured metric of the default configuration (0 before the
  /// baseline is told). Cheap — for status polling, unlike Snapshot().
  double default_performance() const { return default_performance_; }

  /// Best measured metric so far (max-objective convention; 0 when no
  /// iteration has committed). Cheap — no KnowledgeBase copy.
  double best_performance() const {
    int best = kb_.BestIndex();
    return best >= 0 ? kb_.record(best).measured : 0.0;
  }

  /// Committed measurement work in full-run units (each committed
  /// result contributes its fidelity).
  double simulated_work() const { return simulated_work_; }

 private:
  /// A pending (asked, untold) trial plus its buffered result.
  struct PendingTrial {
    Trial trial;
    std::optional<TrialResult> result;
    /// Wall-clock ask time (Unix millis) for deadline expiry; never
    /// serialized — expiry decisions are recorded in the checkpoint,
    /// not re-derived from time.
    int64_t asked_at_ms = 0;
  };
  /// One Ask/AskBatch call. `requested` is recorded for checkpoint
  /// replay: a SuggestBatch override may return fewer than requested,
  /// and replay must re-issue the original request to keep the
  /// optimizer's draw sequence intact.
  struct Round {
    enum class Kind { kBaseline, kSingle, kBatch, kRung };
    Kind kind = Kind::kSingle;
    int requested = 1;
    std::vector<int64_t> ids;
    /// kRung only: the rung's told results in slot order, captured at
    /// commit. Rung measurements never reach the knowledge base (only
    /// the race champion does), so Save() reads them from here.
    std::vector<TrialResult> rung_results;
    /// kRung only: true for a race's last rung (its commit appended
    /// the champion's record to the knowledge base).
    bool final_rung = false;
  };

  /// One candidate configuration inside the active race.
  struct RaceCandidate {
    std::vector<double> point;
    Configuration config;
    /// Accumulated maximize-convention measurements across rungs.
    RunningStat stat;
    bool alive = true;
  };
  /// The active race (at most one; reset when the champion commits).
  struct RaceState {
    std::vector<RaceCandidate> candidates;
    /// Current rung index, 0-based.
    int rung = 0;
    /// Candidate index behind each slot of the current rung's round.
    std::vector<int> slot_candidates;
    /// Trial id -> slot for the current rung (exempts these ids from
    /// deadline expiry).
    std::map<int64_t, int> slot_of_id;
    /// Created-but-unserved trial ids of the current rung, in slot
    /// order; Ask/AskBatch drain this queue.
    std::deque<int64_t> unserved;
  };

  double Penalized(double divisor) const;
  double PenaltyDivisorFor(TrialOutcome outcome) const;
  /// Converts a raw evaluation into the internal maximize-convention
  /// objective and the reported measured value, applying the
  /// per-outcome penalty and updating the penalty floor.
  void ScoreResult(const TrialResult& result, double* objective_value,
                   double* measured);
  /// Appends the iteration to the knowledge base and updates the
  /// iteration budget / early-stopping state.
  void AppendRecord(const Trial& trial, const TrialResult& result,
                    double objective_value, double measured);
  /// Commits fully told rounds at the queue front, in order.
  void CommitReadyRounds();
  void CommitRound(Round& round);
  /// \name Racing stage
  /// @{
  /// Fidelity of rung r under the configured schedule.
  double RungFidelity(int rung) const;
  /// Draws the cohort and opens rung 0. Fails like Ask on optimizer
  /// exhaustion.
  Status StartRace();
  /// Creates the current rung's trials (one per alive candidate) as a
  /// new open round and queues them for Ask.
  void StartRung();
  /// Applies CI-overlap elimination + the ceil(alive/eta) survivor cap
  /// after a non-final rung.
  void EliminateAfterRung();
  /// Commits one completed rung round: feeds the candidates'
  /// statistics, then either opens the next rung or (final rung / all
  /// candidates dead) commits the champion's observation and ends the
  /// race.
  void CommitRungRound(Round& round);
  /// @}
  /// Iteration budget not yet consumed by committed or pending trials.
  int RemainingBudget() const;
  /// Evaluates trials against the attached objective: the baseline and
  /// single-trial rounds run on the objective itself; batch rounds run
  /// across the lazily built clone pool over the shared thread pool
  /// (slot i -> clone i, so results are independent of scheduling).
  std::vector<TrialResult> EvaluateTrials(const std::vector<Trial>& trials);

  ObjectiveFunction* objective_;  // null for detached sessions
  const ConfigSpace* config_space_;
  bool maximize_ = true;
  SpaceAdapter* adapter_;
  Optimizer* optimizer_;
  SessionOptions options_;
  Status init_status_;

  KnowledgeBase kb_;
  /// Independent objective instances for parallel batch evaluation
  /// (lazily built on the first batched step; empty when the
  /// objective does not support Clone()).
  std::vector<std::unique_ptr<ObjectiveFunction>> clone_pool_;
  bool clone_pool_built_ = false;

  int64_t next_trial_id_ = 1;
  std::map<int64_t, PendingTrial> pending_;
  /// Active race, when options_.racing is set and a race is underway.
  std::optional<RaceState> race_;
  /// Ids dropped by Expire: a late Tell answers TrialExpired forever,
  /// and Save writes their round slots as "expired" so replay
  /// reproduces the drop deterministically.
  std::set<int64_t> expired_ids_;
  std::deque<Round> open_rounds_;
  /// Committed rounds in commit order, for checkpoint replay.
  std::vector<Round> committed_rounds_;
  std::vector<double> baseline_metrics_;

  double default_performance_ = 0.0;
  double worst_objective_ = 0.0;  // worst (maximize-convention) value
  bool baseline_done_ = false;
  bool baseline_pending_ = false;
  bool stopped_ = false;
  /// True while Restore() replays a checkpoint: lets replay re-ask
  /// rounds that were asked before an early stop committed (the
  /// original asks legitimately preceded the stop).
  bool replaying_ = false;
  int iterations_run_ = 0;
  double optimizer_seconds_ = 0.0;
  /// Committed measurement work in full-run units (see SessionResult).
  double simulated_work_ = 0.0;
};

}  // namespace llamatune
