#include "src/core/identity_adapter.h"

#include "src/lowdim/bucketizer.h"

namespace llamatune {

namespace {

// Integer knobs with small ranges get an exact grid so the optimizer
// cannot propose values between integers; larger ranges stay
// continuous (the DBMS-side rounding is then the limiting factor).
constexpr int64_t kMaxExactGrid = 4096;

SearchSpace BuildSpace(const ConfigSpace& config_space,
                       const IdentityAdapterOptions& options) {
  std::vector<SearchDim> dims;
  dims.reserve(config_space.num_knobs());
  for (int i = 0; i < config_space.num_knobs(); ++i) {
    const KnobSpec& spec = config_space.knob(i);
    if (spec.type == KnobType::kCategorical) {
      dims.push_back(SearchDim::Categorical(
          static_cast<int64_t>(spec.categories.size())));
      continue;
    }
    int64_t buckets = 0;
    int64_t distinct = spec.NumDistinctValues();
    if (distinct > 0 && distinct <= kMaxExactGrid) buckets = distinct;
    dims.push_back(SearchDim::Continuous(0.0, 1.0, buckets));
  }
  SearchSpace space(std::move(dims));
  if (options.bucket_values > 0) {
    // Fig. 7 variant: bucketize knobs whose value count exceeds K.
    Bucketizer bucketizer(options.bucket_values);
    space = bucketizer.BucketizedKnobSpace(config_space);
  }
  return space;
}

}  // namespace

IdentityAdapter::IdentityAdapter(const ConfigSpace* config_space,
                                 IdentityAdapterOptions options)
    : config_space_(config_space),
      options_(options),
      svb_(options.special_value_bias),
      space_(BuildSpace(*config_space, options)) {}

Configuration IdentityAdapter::Project(const std::vector<double>& point) const {
  std::vector<double> values(config_space_->num_knobs());
  for (int i = 0; i < config_space_->num_knobs(); ++i) {
    const KnobSpec& spec = config_space_->knob(i);
    if (spec.type == KnobType::kCategorical) {
      values[i] = spec.Canonicalize(point[i]);
      continue;
    }
    double u = point[i];  // unit coordinate in [0,1]
    if (options_.special_value_bias > 0.0 && spec.is_hybrid()) {
      values[i] = svb_.Apply(spec, u);
    } else {
      values[i] = config_space_->UnitToValue(i, u);
    }
  }
  return Configuration(std::move(values));
}

std::string IdentityAdapter::name() const {
  std::string n = "Identity";
  if (options_.bucket_values > 0) n += "+BucketK";
  if (options_.special_value_bias > 0.0) n += "+SVB";
  return n;
}

}  // namespace llamatune
