#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/trial.h"
#include "src/knobs/config_space.h"
#include "src/knobs/configuration.h"

namespace llamatune {

/// \brief Outcome of evaluating one DBMS configuration (one workload
/// run, paper Fig. 1 steps 3-5).
struct EvalResult {
  /// The target metric value (throughput in req/s, or p95 latency in
  /// ms, depending on the tuning target).
  double value = 0.0;
  /// True when the DBMS failed to start or crashed under this
  /// configuration (e.g. OOM); the session assigns the paper's
  /// quarter-of-worst penalty instead of `value`. Kept as a plain
  /// bool for objective implementations; `outcome` below carries the
  /// full typed taxonomy (set it for timeouts / lost runs — when it
  /// disagrees with `crashed`, a crashed=true result is treated as
  /// kCrashed).
  bool crashed = false;
  /// Typed outcome; defaults to kOk and mirrors `crashed` when only
  /// the bool is set by a legacy objective.
  TrialOutcome outcome = TrialOutcome::kOk;
  /// Internal DBMS metrics sampled during the run (pg_stat-style);
  /// consumed by RL optimizers as the state vector.
  std::vector<double> metrics;
  /// Fidelity the run was taken at, in (0, 1]. Evaluate() always
  /// produces 1.0; EvaluateAt(config, f) stamps f so the racing stage
  /// can account simulated work per measurement.
  double fidelity = 1.0;

  /// The effective typed outcome: `crashed` wins over a stale kOk.
  TrialOutcome EffectiveOutcome() const {
    if (crashed && outcome == TrialOutcome::kOk) return TrialOutcome::kCrashed;
    return outcome;
  }
};

/// \brief The black-box objective f: configuration -> performance.
///
/// Implemented by the simulated DBMS in src/dbsim; users integrate a
/// real system by implementing this interface (see
/// examples/custom_dbms.cc).
class ObjectiveFunction {
 public:
  virtual ~ObjectiveFunction() = default;

  /// Runs the workload under `config` and reports the result.
  /// Evaluations may be noisy; repeat calls can differ.
  virtual EvalResult Evaluate(const Configuration& config) = 0;

  /// Runs a reduced-length measurement at `fidelity` in (0, 1]: a
  /// fraction of the full run (the DES backend scales its transaction
  /// budget, see SimulatedPostgres). Contract: fidelity >= 1.0 must be
  /// exactly Evaluate(config) — same RNG stream, same result bits — so
  /// a racing session with full-fidelity rungs reduces bit-for-bit to
  /// a non-racing one. The default ignores the knob (a real DBMS whose
  /// run length the tuner does not control) and reports full fidelity.
  virtual EvalResult EvaluateAt(const Configuration& config,
                                double /*fidelity*/) {
    return Evaluate(config);
  }

  /// The knob space this objective is defined over.
  virtual const ConfigSpace& config_space() const = 0;

  /// True when larger objective values are better (throughput);
  /// false for latency-style targets.
  virtual bool maximize() const { return true; }

  /// Optional: an independent instance of this objective that can be
  /// evaluated concurrently with this one (its own simulator state).
  /// The session uses clones to run a batch of configurations in
  /// parallel. Returning nullptr (the default) disables parallel
  /// batch evaluation — batches then evaluate sequentially on `this`.
  virtual std::unique_ptr<ObjectiveFunction> Clone() const { return nullptr; }

  /// Optional: serializes evaluation-side state (e.g. the simulated
  /// DBMS's per-evaluation noise counter) so a checkpointed session
  /// can resume bit-for-bit — the session embeds this in
  /// TuningSession::Save() and feeds it back through RestoreState() on
  /// Restore(). Return nullopt (the default) when the objective is
  /// stateless or its state lives outside the tuner (a real DBMS).
  virtual std::optional<std::string> SaveState() const { return std::nullopt; }

  /// Restores SaveState() output on a fresh instance. Objectives that
  /// return state from SaveState() must implement this; the default
  /// fails with NotImplemented.
  virtual Status RestoreState(const std::string& /*state*/) {
    return Status::NotImplemented(
        "ObjectiveFunction::RestoreState not implemented");
  }
};

}  // namespace llamatune
