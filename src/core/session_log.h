#pragma once

#include <string>

#include "src/common/status.h"
#include "src/core/knowledge_base.h"
#include "src/knobs/config_space.h"

namespace llamatune {

/// \brief Serializes a KnowledgeBase to CSV text: a header with knob
/// names, then one row per evaluated iteration (iteration, objective,
/// measured, crashed flag, physical knob values).
///
/// In production each iteration costs 5-10 minutes of workload time
/// (paper §2.3.1), so persisting the knowledge base — and being able
/// to reload it after a controller restart — is table stakes for a
/// deployable tuner.
std::string SerializeKnowledgeBase(const ConfigSpace& space,
                                   const KnowledgeBase& kb);

/// \brief Parses CSV produced by SerializeKnowledgeBase. Fails if the
/// header's knob names do not match `space` exactly (a changed catalog
/// invalidates old observations).
Result<KnowledgeBase> ParseKnowledgeBase(const ConfigSpace& space,
                                         const std::string& text);

/// Convenience wrappers over files.
Status SaveKnowledgeBase(const ConfigSpace& space, const KnowledgeBase& kb,
                         const std::string& path);
Result<KnowledgeBase> LoadKnowledgeBase(const ConfigSpace& space,
                                        const std::string& path);

/// \brief File wrappers for session checkpoints (the versioned text
/// blobs of TuningSession::Save/Restore): write-then-rename so a crash
/// mid-save never truncates the previous checkpoint — the property a
/// controller needs before it can autosave after every round.
Status SaveCheckpointFile(const std::string& checkpoint,
                          const std::string& path);
Result<std::string> LoadCheckpointFile(const std::string& path);

}  // namespace llamatune
