#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/adapter_pipeline.h"
#include "src/core/adapter_stage.h"
#include "src/core/space_adapter.h"

namespace llamatune {

/// \brief Open, string-keyed factory for adapter pipelines.
///
/// A pipeline key is '+'-separated stage components, each a registered
/// prefix followed by its argument:
///
///   "identity"                      vanilla knob-native baseline
///   "hesbo16"                       HeSBO projection to 16 dims
///   "rembo8"                        REMBO projection to 8 dims
///   "svb0.2"                        20% special-value biasing
///   "bucket10000"                   K=10,000 bucketization
///   "hesbo16+svb0.2+bucket10000"    the full LlamaTune pipeline
///
/// Component order does not matter: stages are canonicalized with the
/// basis stage (projection/identity) innermost. Whole-key aliases are
/// supported ("llamatune" expands to the paper's default pipeline).
/// The registry is open — register new stage prefixes or aliases to
/// make them addressable from the harness, benches, and TunerBuilder
/// without touching any call site.
class AdapterRegistry {
 public:
  /// Builds a stage from the text following the prefix (e.g. "16" for
  /// "hesbo16", "" for "identity").
  using StageFactory =
      std::function<Result<std::unique_ptr<AdapterStage>>(const std::string&)>;

  /// The process-wide registry, pre-loaded with the builtin stages
  /// (identity, hesbo, rembo, svb, bucket) and aliases (llamatune,
  /// vanilla).
  static AdapterRegistry& Global();

  /// Registers a stage under `prefix`. Fails with AlreadyExists on
  /// duplicates.
  Status RegisterStage(const std::string& prefix, StageFactory factory);

  /// Registers `alias` to expand to `key`. Fails with AlreadyExists on
  /// duplicates.
  Status RegisterAlias(const std::string& alias, const std::string& key);

  /// Parses `key` into unbound stages, canonical order (basis last).
  /// Fails with NotFound for unknown components.
  Result<std::vector<std::unique_ptr<AdapterStage>>> ParseStages(
      const std::string& key) const;

  /// Parses, binds, and returns the pipeline over `config_space`.
  /// `seed` feeds randomized stages (the frozen projection matrix).
  Result<std::unique_ptr<SpaceAdapter>> Create(const std::string& key,
                                               const ConfigSpace* config_space,
                                               uint64_t seed = 1) const;

  std::vector<std::string> StagePrefixes() const;
  std::vector<std::string> Aliases() const;

 private:
  AdapterRegistry();

  std::map<std::string, StageFactory> stages_;
  std::map<std::string, std::string> aliases_;
};

}  // namespace llamatune
