#include "src/core/llamatune_adapter.h"

#include "src/common/math_util.h"
#include "src/projection/hesbo.h"
#include "src/projection/rembo.h"

namespace llamatune {

LlamaTuneAdapter::LlamaTuneAdapter(const ConfigSpace* config_space,
                                   LlamaTuneOptions options)
    : config_space_(config_space),
      options_(options),
      svb_(options.special_value_bias) {
  int high_dim = config_space_->num_knobs();
  if (options_.projection == ProjectionKind::kHesbo) {
    projection_ = std::make_unique<HesboProjection>(high_dim,
                                                    options_.target_dim,
                                                    options_.projection_seed);
  } else {
    projection_ = std::make_unique<RemboProjection>(high_dim,
                                                    options_.target_dim,
                                                    options_.projection_seed);
  }
  space_ = projection_->LowDimSpace();
  if (options_.bucket_values > 0) {
    space_ = space_.Bucketized(options_.bucket_values);
  }
}

Configuration LlamaTuneAdapter::Project(
    const std::vector<double>& point) const {
  // 1. Low-dim -> [-1,1]^D (clipped for REMBO, exact for HeSBO).
  std::vector<double> high = projection_->Project(space_.SnapPoint(point));
  std::vector<double> values(config_space_->num_knobs());
  for (int i = 0; i < config_space_->num_knobs(); ++i) {
    const KnobSpec& spec = config_space_->knob(i);
    // 2. Normalize to [0,1].
    double u = Clamp((high[i] + 1.0) / 2.0, 0.0, 1.0);
    // 3+4. Bias hybrid knobs, then re-scale to the physical range.
    if (spec.is_numeric() && spec.is_hybrid() &&
        options_.special_value_bias > 0.0) {
      values[i] = svb_.Apply(spec, u);
    } else {
      values[i] = config_space_->UnitToValue(i, u);
    }
  }
  return Configuration(std::move(values));
}

std::string LlamaTuneAdapter::name() const {
  std::string n = "LlamaTune(";
  n += projection_->name();
  n += "-" + std::to_string(options_.target_dim);
  if (options_.special_value_bias > 0.0) n += "+SVB";
  if (options_.bucket_values > 0) n += "+Bucket";
  n += ")";
  return n;
}

}  // namespace llamatune
