#include "src/core/adapter_pipeline.h"

#include <utility>

namespace llamatune {

AdapterPipeline::AdapterPipeline(
    const ConfigSpace* config_space,
    std::vector<std::unique_ptr<AdapterStage>> stages, uint64_t seed)
    : config_space_(config_space), stages_(std::move(stages)), seed_(seed) {}

Result<std::unique_ptr<AdapterPipeline>> AdapterPipeline::Create(
    const ConfigSpace* config_space,
    std::vector<std::unique_ptr<AdapterStage>> stages, uint64_t seed) {
  if (config_space == nullptr) {
    return Status::InvalidArgument("AdapterPipeline: null config space");
  }
  std::unique_ptr<AdapterPipeline> pipeline(
      new AdapterPipeline(config_space, std::move(stages), seed));
  LT_RETURN_NOT_OK(pipeline->Bind());
  return pipeline;
}

Status AdapterPipeline::Bind() {
  // The chain bottoms out in the unit knob space: one continuous [0,1]
  // dimension per knob. A basis stage replaces this view and must
  // therefore sit innermost.
  std::vector<SearchDim> unit_dims(config_space_->num_knobs(),
                                   SearchDim::Continuous(0.0, 1.0));
  SearchSpace current(std::move(unit_dims));

  StageContext ctx;
  ctx.config_space = config_space_;
  ctx.seed = seed_;

  // A basis stage defines the bottom coordinate system, so it must be
  // the innermost (last) stage.
  for (size_t i = 0; i < stages_.size(); ++i) {
    if (stages_[i]->is_basis() && i + 1 != stages_.size()) {
      return Status::InvalidArgument(
          "AdapterPipeline: basis stage '" + stages_[i]->name() +
          "' must be innermost (only one projection/identity basis per "
          "pipeline, listed last)");
    }
  }

  // Bind innermost to outermost.
  for (auto it = stages_.rbegin(); it != stages_.rend(); ++it) {
    Result<SearchSpace> bound = (*it)->Bind(ctx, current);
    if (!bound.ok()) return bound.status();
    current = std::move(bound).ValueOrDie();
  }
  space_ = std::move(current);

  // Resolve decode overrides: the outermost claiming stage wins, so a
  // user-added stage can override a builtin's decode.
  decoder_.assign(config_space_->num_knobs(), nullptr);
  for (int i = 0; i < config_space_->num_knobs(); ++i) {
    for (const auto& stage : stages_) {
      if (stage->DecodesKnob(config_space_->knob(i))) {
        decoder_[i] = stage.get();
        break;
      }
    }
  }
  return Status::OK();
}

Configuration AdapterPipeline::Project(const std::vector<double>& point) const {
  // Snap onto the optimizer-facing space first (bucket grids, category
  // integrality, bound clamping) — mirrors the legacy adapters.
  std::vector<double> p = space_.SnapPoint(point);
  for (const auto& stage : stages_) {
    p = stage->Apply(p);
  }
  std::vector<double> values(config_space_->num_knobs());
  for (int i = 0; i < config_space_->num_knobs(); ++i) {
    const KnobSpec& spec = config_space_->knob(i);
    if (decoder_[i] != nullptr) {
      values[i] = decoder_[i]->DecodeKnob(spec, p[i]);
    } else {
      values[i] = config_space_->UnitToValue(i, p[i]);
    }
  }
  return Configuration(std::move(values));
}

std::string AdapterPipeline::name() const {
  std::string n = "Pipeline(";
  for (size_t i = 0; i < stages_.size(); ++i) {
    if (i > 0) n += "|";
    n += stages_[i]->name();
  }
  n += ")";
  return n;
}

}  // namespace llamatune
