#include "src/lowdim/special_value_bias.h"

#include <cmath>

#include "src/common/math_util.h"

namespace llamatune {

double SpecialValueBias::Apply(const KnobSpec& spec, double u) const {
  u = Clamp(u, 0.0, 1.0);
  if (!spec.is_numeric()) {
    // Categorical knobs are never hybrid; bin uniformly.
    int n = static_cast<int>(spec.categories.size());
    int bin = static_cast<int>(std::floor(u * n));
    if (bin >= n) bin = n - 1;
    return static_cast<double>(bin);
  }
  if (!spec.is_hybrid() || bias_ <= 0.0) {
    return spec.Canonicalize(
        Rescale(u, 0.0, 1.0, spec.min_value, spec.max_value));
  }
  int num_special = static_cast<int>(spec.special_values.size());
  if (u < bias_) {
    // Split the biased band equally across the special values.
    double band = bias_ / num_special;
    int idx = static_cast<int>(std::floor(u / band));
    if (idx >= num_special) idx = num_special - 1;
    return spec.special_values[idx];
  }
  double t = (u - bias_) / (1.0 - bias_);
  double lo = spec.RegularMin();
  double value = Rescale(t, 0.0, 1.0, lo, spec.max_value);
  value = spec.Canonicalize(value);
  // Rounding could land back on a special value at the band edge; nudge
  // up to keep the regular band special-free.
  if (spec.IsSpecialValue(value)) {
    value = spec.Canonicalize(lo);
  }
  return value;
}

double SpecialValueBias::SpecialMass(const KnobSpec& spec) const {
  return (spec.is_numeric() && spec.is_hybrid()) ? bias_ : 0.0;
}

}  // namespace llamatune
