#pragma once

#include <vector>

#include "src/knobs/knob.h"

namespace llamatune {

/// \brief Special-value biasing for hybrid knobs (paper §4.1, Fig. 5).
///
/// Hybrid knobs carry sentinel values (e.g. backend_flush_after = 0
/// disables forced writeback) that break the numeric order BO methods
/// rely on, and that uniform sampling is unlikely to ever hit. This
/// transform reserves the first `bias` mass of a knob's normalized
/// [0,1] domain for the special value(s): a normalized coordinate
/// u < bias yields the special value, and u >= bias is linearly
/// re-scaled onto the regular (non-special) range.
///
/// The transform runs *after* the optimizer's suggestion (and after
/// any projection), so it requires no optimizer modifications and can
/// be paired with any of them.
class SpecialValueBias {
 public:
  /// \param bias probability mass reserved for special values, in
  /// [0, 1). The paper defaults to 0.20, which gives ~90% confidence
  /// of at least one special-value draw within 10 LHS init samples.
  explicit SpecialValueBias(double bias = 0.20) : bias_(bias) {}

  double bias() const { return bias_; }

  /// Maps a normalized coordinate u in [0,1] to a physical value of
  /// `spec`. Non-hybrid knobs are scaled onto their full range
  /// unchanged. For hybrid knobs: u < bias picks a special value (the
  /// [0, bias) band is split equally when there are several), else the
  /// remaining band maps linearly onto [RegularMin, max].
  double Apply(const KnobSpec& spec, double u) const;

  /// Inverse-direction helper used in tests and analysis: the total
  /// probability that a uniform u yields a special value (== bias for
  /// hybrid knobs, 0 otherwise).
  double SpecialMass(const KnobSpec& spec) const;

 private:
  double bias_;
};

}  // namespace llamatune
