#include "src/lowdim/bucketizer.h"

namespace llamatune {

SearchSpace Bucketizer::Apply(const SearchSpace& space) const {
  return space.Bucketized(max_unique_values_);
}

SearchSpace Bucketizer::BucketizedKnobSpace(
    const ConfigSpace& config_space) const {
  std::vector<SearchDim> dims;
  dims.reserve(config_space.num_knobs());
  for (int i = 0; i < config_space.num_knobs(); ++i) {
    const KnobSpec& spec = config_space.knob(i);
    if (spec.type == KnobType::kCategorical) {
      dims.push_back(
          SearchDim::Categorical(static_cast<int64_t>(spec.categories.size())));
      continue;
    }
    int64_t distinct = spec.NumDistinctValues();  // 0 == continuum
    int64_t buckets = 0;
    if (distinct == 0 || distinct > max_unique_values_) {
      buckets = max_unique_values_;
    } else {
      buckets = distinct;
    }
    dims.push_back(SearchDim::Continuous(0.0, 1.0, buckets));
  }
  return SearchSpace(std::move(dims));
}

int Bucketizer::NumAffectedKnobs(const ConfigSpace& config_space) const {
  int n = 0;
  for (int i = 0; i < config_space.num_knobs(); ++i) {
    const KnobSpec& spec = config_space.knob(i);
    if (spec.type == KnobType::kCategorical) continue;
    int64_t distinct = spec.NumDistinctValues();
    if (distinct == 0 || distinct > max_unique_values_) ++n;
  }
  return n;
}

}  // namespace llamatune
