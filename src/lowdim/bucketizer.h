#pragma once

#include <cstdint>

#include "src/knobs/config_space.h"
#include "src/optimizer/search_space.h"

namespace llamatune {

/// \brief Search-space bucketization (paper §4.2).
///
/// Limits the number of unique values any dimension can take to K,
/// spreading the K values uniformly over the range. Knobs/dimensions
/// with fewer than K values are unaffected. Exposing the bucketized
/// grid to the optimizer (rather than post-hoc rounding) is a design
/// requirement of the unified pipeline (paper §5): the optimizer must
/// be aware of the larger sampling intervals or it will keep sampling
/// at finer granularity.
class Bucketizer {
 public:
  explicit Bucketizer(int64_t max_unique_values)
      : max_unique_values_(max_unique_values) {}

  int64_t max_unique_values() const { return max_unique_values_; }

  /// Bucketizes every continuous dimension of `space` to at most K
  /// unique values (already-coarser grids unchanged).
  SearchSpace Apply(const SearchSpace& space) const;

  /// Builds the optimizer-facing space for tuning `config_space`
  /// directly (one dimension per knob, unit-scaled numerics), with
  /// only the knobs exceeding K distinct values bucketized — the
  /// "original space" variant used by the Fig. 7 case study.
  SearchSpace BucketizedKnobSpace(const ConfigSpace& config_space) const;

  /// Number of knobs in `config_space` whose distinct-value count
  /// exceeds K (i.e. how many knobs bucketization actually affects);
  /// the paper sets K from the range distribution so this is ~P% of
  /// all knobs.
  int NumAffectedKnobs(const ConfigSpace& config_space) const;

 private:
  int64_t max_unique_values_;
};

}  // namespace llamatune
