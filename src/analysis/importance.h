#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/objective.h"
#include "src/core/space_adapter.h"
#include "src/model/random_forest.h"

namespace llamatune {

/// \brief A sampled corpus for importance analysis: unit-space points
/// and their measured objective values (paper §2.3.2: thousands of
/// LHS-generated configurations).
struct ImportanceCorpus {
  std::vector<std::vector<double>> points;
  std::vector<double> values;
};

/// \brief One knob's importance score.
struct KnobImportance {
  std::string knob;
  double score = 0.0;
};

/// Generates a corpus by LHS-sampling the adapter's search space and
/// evaluating each projected configuration on `objective`.
ImportanceCorpus BuildCorpus(ObjectiveFunction* objective,
                             const SpaceAdapter& adapter, int num_samples,
                             uint64_t seed);

/// \brief Permutation importance on a random-forest fit of the corpus:
/// the out-of-fit error increase when a feature's column is shuffled.
/// Scores are normalized to sum to 1. `adapter` supplies knob names.
std::vector<KnobImportance> PermutationImportance(
    const ImportanceCorpus& corpus, const SpaceAdapter& adapter,
    uint64_t seed);

/// Returns the top-k knob names from a descending-sorted ranking.
std::vector<std::string> TopKnobs(const std::vector<KnobImportance>& ranking,
                                  int k);

}  // namespace llamatune
