#include "src/analysis/importance.h"

#include <algorithm>
#include <cmath>

#include "src/common/rng.h"
#include "src/sampling/latin_hypercube.h"

namespace llamatune {

ImportanceCorpus BuildCorpus(ObjectiveFunction* objective,
                             const SpaceAdapter& adapter, int num_samples,
                             uint64_t seed) {
  Rng rng(seed);
  ImportanceCorpus corpus;
  corpus.points = LatinHypercubeSample(adapter.search_space(), num_samples,
                                       &rng);
  corpus.values.reserve(corpus.points.size());
  std::vector<std::vector<double>> kept;
  kept.reserve(corpus.points.size());
  for (const auto& point : corpus.points) {
    EvalResult result = objective->Evaluate(adapter.Project(point));
    if (result.crashed) continue;  // crashed samples carry no gradient info
    kept.push_back(point);
    corpus.values.push_back(result.value);
  }
  corpus.points = std::move(kept);
  return corpus;
}

std::vector<KnobImportance> PermutationImportance(
    const ImportanceCorpus& corpus, const SpaceAdapter& adapter,
    uint64_t seed) {
  const SearchSpace& space = adapter.search_space();
  int d = space.num_dims();
  int n = static_cast<int>(corpus.points.size());
  std::vector<KnobImportance> out(d);
  for (int j = 0; j < d; ++j) {
    out[j].knob = adapter.config_space().knob(j).name;
    out[j].score = 0.0;
  }
  if (n < 10) return out;

  Rng rng(seed);
  RandomForestOptions options;
  options.num_trees = 24;
  RandomForest forest(space, options, rng.NextSeed());
  forest.Fit(corpus.points, corpus.values);

  auto mse = [&](const std::vector<std::vector<double>>& xs) {
    double acc = 0.0;
    for (int i = 0; i < n; ++i) {
      double err = forest.PredictMean(xs[i]) - corpus.values[i];
      acc += err * err;
    }
    return acc / n;
  };
  double baseline_mse = mse(corpus.points);

  constexpr int kRepeats = 3;
  double total = 0.0;
  for (int j = 0; j < d; ++j) {
    double increase = 0.0;
    for (int r = 0; r < kRepeats; ++r) {
      std::vector<std::vector<double>> shuffled = corpus.points;
      std::vector<int> perm = rng.Permutation(n);
      for (int i = 0; i < n; ++i) {
        shuffled[i][j] = corpus.points[perm[i]][j];
      }
      increase += std::max(0.0, mse(shuffled) - baseline_mse);
    }
    out[j].score = increase / kRepeats;
    total += out[j].score;
  }
  if (total > 0.0) {
    for (auto& ki : out) ki.score /= total;
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.score > b.score;
  });
  return out;
}

std::vector<std::string> TopKnobs(const std::vector<KnobImportance>& ranking,
                                  int k) {
  std::vector<std::string> out;
  for (int i = 0; i < k && i < static_cast<int>(ranking.size()); ++i) {
    out.push_back(ranking[i].knob);
  }
  return out;
}

}  // namespace llamatune
