#include "src/analysis/shap.h"

#include <algorithm>
#include <cmath>

#include "src/common/rng.h"
#include "src/model/random_forest.h"

namespace llamatune {

std::vector<KnobImportance> ShapImportance(const ImportanceCorpus& corpus,
                                           const SpaceAdapter& adapter,
                                           const std::vector<double>& baseline,
                                           ShapOptions options,
                                           uint64_t seed) {
  const SearchSpace& space = adapter.search_space();
  int d = space.num_dims();
  int n = static_cast<int>(corpus.points.size());
  std::vector<KnobImportance> out(d);
  for (int j = 0; j < d; ++j) {
    out[j].knob = adapter.config_space().knob(j).name;
  }
  if (n < 10) return out;

  Rng rng(seed);
  RandomForestOptions forest_options;
  forest_options.num_trees = options.num_trees;
  RandomForest forest(space, forest_options, rng.NextSeed());
  forest.Fit(corpus.points, corpus.values);

  std::vector<double> abs_phi(d, 0.0);
  int explained = std::min(options.num_explained_points, n);
  std::vector<int> chosen = rng.SampleWithoutReplacement(n, explained);
  for (int idx : chosen) {
    const std::vector<double>& x = corpus.points[idx];
    std::vector<double> phi(d, 0.0);
    for (int perm_i = 0; perm_i < options.num_permutations; ++perm_i) {
      std::vector<int> order = rng.Permutation(d);
      // Walk the order, switching features from baseline to x; each
      // switch's prediction delta is that feature's marginal
      // contribution under this order.
      std::vector<double> current = baseline;
      double prev = forest.PredictMean(current);
      for (int j : order) {
        current[j] = x[j];
        double next = forest.PredictMean(current);
        phi[j] += next - prev;
        prev = next;
      }
    }
    for (int j = 0; j < d; ++j) {
      abs_phi[j] += std::abs(phi[j] / options.num_permutations);
    }
  }

  double total = 0.0;
  for (int j = 0; j < d; ++j) {
    out[j].score = abs_phi[j] / explained;
    total += out[j].score;
  }
  if (total > 0.0) {
    for (auto& ki : out) ki.score /= total;
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.score > b.score;
  });
  return out;
}

}  // namespace llamatune
