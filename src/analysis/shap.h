#pragma once

#include <cstdint>
#include <vector>

#include "src/analysis/importance.h"

namespace llamatune {

/// \brief Monte-Carlo Shapley-value attribution (Štrumbelj &
/// Kononenko; the sampling approximation underlying SHAP) on a
/// random-forest surrogate fit to the corpus.
///
/// For each explained point, feature contributions are estimated by
/// averaging marginal prediction deltas over random feature-insertion
/// orders, against a baseline point (the default configuration, per
/// the paper: SHAP "analyz[es] the performance deviation from the
/// default configuration"). Global importance is the mean |phi_j| over
/// a subsample of corpus points — this is the ranking the Fig. 2 /
/// Table 1 experiment selects its top-8 from.
struct ShapOptions {
  int num_explained_points = 60;  ///< corpus points to attribute
  int num_permutations = 24;      ///< feature orders per point
  int num_trees = 24;
};

std::vector<KnobImportance> ShapImportance(const ImportanceCorpus& corpus,
                                           const SpaceAdapter& adapter,
                                           const std::vector<double>& baseline,
                                           ShapOptions options, uint64_t seed);

}  // namespace llamatune
