#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "src/common/sync.h"

namespace llamatune {

/// \brief Shared fixed-size worker pool for the library's parallel
/// sections: batch evaluation in TuningSession, multi-seed sharding in
/// RunExperiment, GP hyperparameter restarts, and surrogate candidate
/// scoring.
///
/// Design constraints, in order:
///  * **Determinism.** ParallelFor assigns each index to exactly one
///    executor and the caller only observes per-index results, so any
///    interleaving yields identical output; every deterministic session
///    stays bit-for-bit reproducible regardless of thread count.
///  * **Nesting without deadlock.** The calling thread participates in
///    its own loop, so a pool worker running a session can issue nested
///    ParallelFor calls (batch evaluation inside a sharded experiment)
///    and always makes progress even when every worker is busy.
///  * **Exception safety.** The first exception (by lowest index) is
///    captured and rethrown on the calling thread after the loop
///    drains; remaining indices still run so the state is consistent.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (values < 1 are clamped to 1).
  explicit ThreadPool(int num_threads);

  /// Joins all workers after draining queued tasks.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Schedules `fn` on the pool and returns a future for its result.
  /// Exceptions thrown by `fn` surface through the future.
  template <typename F>
  auto Submit(F&& fn) -> std::future<typename std::invoke_result<F>::type> {
    using R = typename std::invoke_result<F>::type;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    Enqueue([task] { (*task)(); });
    return future;
  }

  /// Runs fn(i) for every i in [0, n), spreading indices across the
  /// pool plus the calling thread. Blocks until all n indices have
  /// executed. `max_parallelism` caps the number of executors
  /// (0 = pool size + caller; 1 = serial inline, bypassing the pool).
  /// If any fn(i) throws, the exception with the lowest index is
  /// rethrown here after the loop completes.
  void ParallelFor(int n, const std::function<void(int)>& fn,
                   int max_parallelism = 0);

  /// Process-wide shared pool sized by DefaultThreads(). Constructed on
  /// first use and intentionally leaked (workers die with the process).
  static ThreadPool& Global();

  /// Hardware concurrency, overridable via the LLAMATUNE_NUM_THREADS
  /// environment variable; at least 1.
  static int DefaultThreads();

 private:
  void Enqueue(std::function<void()> task);
  void WorkerLoop();

  std::vector<std::thread> workers_;
  Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
};

}  // namespace llamatune
