#include "src/common/fault_injection.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <sstream>

#include "src/common/sync.h"

namespace llamatune {

namespace {

struct SiteState {
  // Trigger: exactly one of the two is active.
  double probability = 0.0;          // probability mode when schedule empty
  std::vector<uint64_t> schedule;    // sorted 0-based hit indices
  uint64_t hits = 0;
  uint64_t fires = 0;
};

struct Registry {
  Mutex mu;
  uint64_t seed GUARDED_BY(mu) = 0;
  std::map<std::string, SiteState> sites GUARDED_BY(mu);
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

// 64-bit mix (splitmix64 finalizer): decorrelates (seed, site, hit)
// into an effectively uniform 64-bit value.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashSite(const std::string& site) {
  // FNV-1a: stable across platforms (std::hash is not).
  uint64_t h = 1469598103934665603ULL;
  for (char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

bool ParseSpecInto(const std::string& spec, uint64_t* seed,
                   std::map<std::string, SiteState>* sites) {
  std::istringstream in(spec);
  std::string entry;
  while (std::getline(in, entry, ';')) {
    if (entry.empty()) continue;
    size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= entry.size()) {
      return false;
    }
    std::string name = entry.substr(0, eq);
    std::string value = entry.substr(eq + 1);
    if (name == "seed") {
      char* end = nullptr;
      unsigned long long s = std::strtoull(value.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') return false;
      *seed = static_cast<uint64_t>(s);
      continue;
    }
    SiteState site;
    if (value[0] == 'p') {
      char* end = nullptr;
      double p = std::strtod(value.c_str() + 1, &end);
      if (end == nullptr || *end != '\0' || p < 0.0 || p > 1.0) return false;
      site.probability = p;
    } else if (value[0] == '@') {
      std::istringstream list(value.substr(1));
      std::string idx;
      while (std::getline(list, idx, ',')) {
        char* end = nullptr;
        unsigned long long k = std::strtoull(idx.c_str(), &end, 10);
        if (end == nullptr || *end != '\0' || idx.empty()) return false;
        site.schedule.push_back(static_cast<uint64_t>(k));
      }
      if (site.schedule.empty()) return false;
      std::sort(site.schedule.begin(), site.schedule.end());
    } else {
      return false;
    }
    (*sites)[name] = std::move(site);
  }
  return true;
}

}  // namespace

std::atomic<bool> FaultInjection::enabled_{false};

bool FaultInjection::Configure(const std::string& spec) {
  uint64_t seed = 0;
  std::map<std::string, SiteState> sites;
  if (!ParseSpecInto(spec, &seed, &sites)) return false;
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  registry.seed = seed;
  registry.sites = std::move(sites);
  enabled_.store(!registry.sites.empty(), std::memory_order_relaxed);
  return true;
}

bool FaultInjection::ConfigureFromEnv(const char* env_var) {
  const char* spec = std::getenv(env_var);
  if (spec == nullptr || spec[0] == '\0') return true;
  return Configure(spec);
}

void FaultInjection::Reset() {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  enabled_.store(false, std::memory_order_relaxed);
  registry.seed = 0;
  registry.sites.clear();
}

uint64_t FaultInjection::HitCount(const std::string& site) {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  auto it = registry.sites.find(site);
  return it == registry.sites.end() ? 0 : it->second.hits;
}

uint64_t FaultInjection::FireCount(const std::string& site) {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  auto it = registry.sites.find(site);
  return it == registry.sites.end() ? 0 : it->second.fires;
}

bool FaultInjection::ShouldFailSlow(const char* site) {
  Registry& registry = GetRegistry();
  MutexLock lock(registry.mu);
  auto it = registry.sites.find(site);
  if (it == registry.sites.end()) return false;
  SiteState& state = it->second;
  uint64_t hit = state.hits++;
  bool fire;
  if (!state.schedule.empty()) {
    fire = std::binary_search(state.schedule.begin(), state.schedule.end(),
                              hit);
  } else {
    // Deterministic per-(seed, site, hit) coin flip: the top 53 bits
    // of the mix as a uniform double in [0, 1).
    uint64_t bits = Mix64(registry.seed ^ HashSite(it->first) ^
                          Mix64(hit + 0x51ed2701ULL));
    double u = static_cast<double>(bits >> 11) * 0x1.0p-53;
    fire = u < state.probability;
  }
  if (fire) ++state.fires;
  return fire;
}

}  // namespace llamatune
