#include "src/common/rng.h"

#include <algorithm>
#include <cstring>
#include <numeric>

namespace llamatune {

double Rng::Uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::Gaussian(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

uint64_t Rng::NextSeed() { return engine_(); }

std::vector<int> Rng::Permutation(int n) {
  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  std::shuffle(perm.begin(), perm.end(), engine_);
  return perm;
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  std::vector<int> perm = Permutation(n);
  perm.resize(std::min<size_t>(perm.size(), static_cast<size_t>(k)));
  return perm;
}

uint64_t HashCombine(uint64_t a, uint64_t b) {
  // splitmix64 finalizer applied to the xor-rotated pair; this is a
  // stable (platform-independent) mix, unlike std::hash.
  uint64_t x = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

uint64_t HashDoubles(const std::vector<double>& values) {
  uint64_t h = 0x2545f4914f6cdd1dULL;
  for (double v : values) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    h = HashCombine(h, bits);
  }
  return h;
}

}  // namespace llamatune
