#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace llamatune {

/// \brief Deterministic pseudo-random number generator.
///
/// Thin wrapper over std::mt19937_64 with the helper draws used across
/// the library. Every stochastic component in the system receives an
/// explicit seed so that a tuning session is reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0);

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal draw (mean 0, stddev 1).
  double Gaussian(double mean = 0.0, double stddev = 1.0);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  /// A fresh seed suitable for constructing a child Rng.
  uint64_t NextSeed();

  /// Random permutation of {0, ..., n-1}.
  std::vector<int> Permutation(int n);

  /// Sample k distinct indices from {0, ..., n-1} (k <= n).
  std::vector<int> SampleWithoutReplacement(int n, int k);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// \brief Stable 64-bit hash combiner (splitmix-style) for deriving
/// per-evaluation noise seeds from (config hash, iteration).
uint64_t HashCombine(uint64_t a, uint64_t b);

/// \brief Stable hash of a vector of doubles (bit-pattern based).
uint64_t HashDoubles(const std::vector<double>& values);

}  // namespace llamatune
