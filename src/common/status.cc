#include "src/common/status.h"

#include <cstdio>
#include <cstdlib>

namespace llamatune {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kSessionNotFound:
      return "SessionNotFound";
    case StatusCode::kSessionAlreadyExists:
      return "SessionAlreadyExists";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kTrialExpired:
      return "TrialExpired";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal {

void DieOnBadResult(const Status& status) {
  std::fprintf(stderr, "Result accessed with error status: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal

}  // namespace llamatune
