#include "src/common/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <string>

namespace llamatune {

ThreadPool::ThreadPool(int num_threads) {
  int n = std::max(1, num_threads);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      cv_.Wait(lock, [this]() REQUIRES(mu_) {
        return stop_ || !queue_.empty();
      });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& fn,
                             int max_parallelism) {
  if (n <= 0) return;
  int width = max_parallelism > 0 ? max_parallelism : num_threads() + 1;
  if (width <= 1 || n == 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }

  struct LoopState {
    std::atomic<int> next{0};
    std::atomic<int> completed{0};
    int n = 0;
    const std::function<void(int)>* fn = nullptr;
    Mutex mu;
    CondVar done_cv;
    std::exception_ptr error GUARDED_BY(mu);
    int error_index GUARDED_BY(mu) = std::numeric_limits<int>::max();
  };
  auto state = std::make_shared<LoopState>();
  state->n = n;
  state->fn = &fn;

  // Every executor (queued helpers and the caller) drains the shared
  // index counter; an executor that arrives after the loop is done
  // exits immediately, so stale queued helpers are harmless no-ops.
  auto drain = [state] {
    for (;;) {
      int i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= state->n) return;
      try {
        (*state->fn)(i);
      } catch (...) {
        MutexLock lock(state->mu);
        if (i < state->error_index) {
          state->error_index = i;
          state->error = std::current_exception();
        }
      }
      if (state->completed.fetch_add(1) + 1 == state->n) {
        MutexLock lock(state->mu);
        state->done_cv.NotifyAll();
      }
    }
  };

  int helpers = std::min(width - 1, n - 1);
  for (int h = 0; h < helpers; ++h) Enqueue(drain);
  drain();  // caller participates: progress is guaranteed even when
            // every pool worker is busy with (or blocked on) other work

  MutexLock lock(state->mu);
  state->done_cv.Wait(lock,
                      [&] { return state->completed.load() == state->n; });
  if (state->error) std::rethrow_exception(state->error);
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool(DefaultThreads());
  return *pool;
}

int ThreadPool::DefaultThreads() {
  if (const char* env = std::getenv("LLAMATUNE_NUM_THREADS")) {
    int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

}  // namespace llamatune
