#pragma once

#include <cstdint>
#include <string>

#include "src/common/status.h"

namespace llamatune {

/// \name Bit-exact double text codec
///
/// Checkpoints and the trial wire format must round-trip doubles
/// exactly — a decimal rendering loses bits and would break the
/// bit-for-bit resume guarantee — so doubles are encoded as the
/// 16-hex-digit IEEE-754 bit pattern ("3ff0000000000000" for 1.0).
/// Negative zero and non-finite values (including NaN payloads)
/// survive the round trip unchanged.
/// @{

/// Encodes a double as its 64-bit pattern in lowercase hex.
std::string EncodeDoubleBits(double value);

/// Decodes EncodeDoubleBits output. Fails on malformed tokens.
Result<double> DecodeDoubleBits(const std::string& token);

/// @}

/// Parses a whole-token base-10 signed integer (no trailing junk).
Result<int64_t> ParseInt64(const std::string& token);

/// Hex-encodes arbitrary bytes ("" -> "", "Ok" -> "4f6b"): keeps
/// opaque payloads (objective state blobs) single-token inside the
/// whitespace-delimited checkpoint format.
std::string EncodeBytes(const std::string& bytes);

/// Decodes EncodeBytes output. Fails on odd length or non-hex digits.
Result<std::string> DecodeBytes(const std::string& token);

}  // namespace llamatune
