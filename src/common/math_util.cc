#include "src/common/math_util.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace llamatune {

double Clamp(double x, double lo, double hi) {
  return std::min(std::max(x, lo), hi);
}

std::string FormatCompact(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", value);
  return buf;
}

double Rescale(double x, double x_lo, double x_hi, double y_lo, double y_hi) {
  if (x_hi <= x_lo) return y_lo;
  double t = (x - x_lo) / (x_hi - x_lo);
  return y_lo + t * (y_hi - y_lo);
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double mu = Mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - mu) * (x - mu);
  return acc / static_cast<double>(xs.size());
}

double Stddev(const std::vector<double>& xs) { return std::sqrt(Variance(xs)); }

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  p = Clamp(p, 0.0, 100.0);
  double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(rank));
  size_t hi = static_cast<size_t>(std::ceil(rank));
  double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double NormPdf(double x) {
  static const double kInvSqrt2Pi = 0.3989422804014327;
  return kInvSqrt2Pi * std::exp(-0.5 * x * x);
}

double NormCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

int ArgMax(const std::vector<double>& xs) {
  if (xs.empty()) return -1;
  return static_cast<int>(std::max_element(xs.begin(), xs.end()) - xs.begin());
}

int ArgMin(const std::vector<double>& xs) {
  if (xs.empty()) return -1;
  return static_cast<int>(std::min_element(xs.begin(), xs.end()) - xs.begin());
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  double acc = 0.0;
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

double Norm2(const std::vector<double>& xs) { return std::sqrt(Dot(xs, xs)); }

std::vector<double> BestSoFarMax(const std::vector<double>& xs) {
  std::vector<double> out(xs.size());
  double best = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < xs.size(); ++i) {
    best = std::max(best, xs[i]);
    out[i] = best;
  }
  return out;
}

std::vector<double> BestSoFarMin(const std::vector<double>& xs) {
  std::vector<double> out(xs.size());
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < xs.size(); ++i) {
    best = std::min(best, xs[i]);
    out[i] = best;
  }
  return out;
}

double Saturating(double x, double k) {
  if (x <= 0.0) return 0.0;
  return x / (x + k);
}

}  // namespace llamatune
