#pragma once

#include <optional>
#include <string>
#include <utility>

namespace llamatune {

/// \brief Error codes used across the library.
///
/// Modeled after the Status idiom used by Arrow and RocksDB: fallible
/// operations return a Status (or a Result<T>) instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kInternal,
  kNotImplemented,
  /// A named tuning session does not exist. Distinct from the generic
  /// kNotFound (which still covers registry keys, files, trial ids...)
  /// so remote callers can tell "no such session" apart from "bad
  /// spec" without string matching; carried as its own error code by
  /// the wire protocol.
  kSessionNotFound,
  /// A session with that name is already registered (duplicate
  /// CreateSession, or Resume into a live name). Distinct from the
  /// generic kAlreadyExists for the same reason as kSessionNotFound.
  kSessionAlreadyExists,
  /// Transient overload — the operation was refused by admission
  /// control and should be retried later (the wire protocol's Busy).
  kUnavailable,
  /// A hard per-tenant limit was hit (the wire protocol's
  /// QuotaExceeded); retrying without releasing resources won't help.
  kResourceExhausted,
  /// A Tell arrived for a pending trial whose deadline passed: the
  /// session reclaimed its budget and the late result can no longer be
  /// committed. Distinct from kNotFound (never existed) and
  /// kAlreadyExists (committed) so evaluators can tell "my work was
  /// abandoned" from "my work was duplicated".
  kTrialExpired,
};

/// \brief A success-or-error outcome for fallible operations.
///
/// A default-constructed Status is OK. Error statuses carry a code and a
/// human-readable message. Statuses are cheap to copy (a code plus a
/// string) and must be checked by the caller.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status SessionNotFound(std::string msg) {
    return Status(StatusCode::kSessionNotFound, std::move(msg));
  }
  static Status SessionAlreadyExists(std::string msg) {
    return Status(StatusCode::kSessionAlreadyExists, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status TrialExpired(std::string msg) {
    return Status(StatusCode::kTrialExpired, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Returns "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// \brief Either a value of type T or an error Status.
///
/// Lightweight alternative to exceptions for constructor-like factory
/// functions. Accessing the value of an errored Result aborts.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)), status_(Status::OK()) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {}                 // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& ValueOrDie() const& {
    CheckOk();
    return *value_;
  }
  T&& ValueOrDie() && {
    CheckOk();
    return *std::move(value_);
  }
  const T& operator*() const& { return ValueOrDie(); }
  const T* operator->() const& { return &ValueOrDie(); }

 private:
  void CheckOk() const;

  std::optional<T> value_;
  Status status_;
};

namespace internal {
[[noreturn]] void DieOnBadResult(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::CheckOk() const {
  if (!status_.ok()) internal::DieOnBadResult(status_);
}

/// Propagates an error Status from a callee to the caller.
#define LT_RETURN_NOT_OK(expr)                 \
  do {                                         \
    ::llamatune::Status _st = (expr);          \
    if (!_st.ok()) return _st;                 \
  } while (0)

}  // namespace llamatune
