#include "src/common/matrix.h"

#include <algorithm>
#include <cmath>

namespace llamatune {

std::vector<double> Matrix::Apply(const std::vector<double>& x) const {
  std::vector<double> y(rows_, 0.0);
  for (int r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = Row(r);
    for (int c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

std::vector<double> Matrix::ApplyTransposed(const std::vector<double>& x) const {
  std::vector<double> y(cols_, 0.0);
  for (int r = 0; r < rows_; ++r) {
    const double* row = Row(r);
    for (int c = 0; c < cols_; ++c) y[c] += row[c] * x[r];
  }
  return y;
}

void Matrix::Grow(int rows, int cols, double fill) {
  int new_stride = std::max(cols, 2 * stride_);
  int new_row_capacity = std::max(rows, 2 * row_capacity_);
  std::vector<double> next(
      static_cast<size_t>(new_row_capacity) * new_stride, fill);
  int copy_rows = std::min(rows, rows_);
  int copy_cols = std::min(cols, cols_);
  for (int r = 0; r < copy_rows; ++r) {
    std::copy_n(data_.data() + static_cast<size_t>(r) * stride_, copy_cols,
                next.data() + static_cast<size_t>(r) * new_stride);
  }
  data_ = std::move(next);
  stride_ = new_stride;
  row_capacity_ = new_row_capacity;
  rows_ = rows;
  cols_ = cols;
}

void Matrix::ResizePreserve(int rows, int cols, double fill) {
  if (cols <= stride_ && rows <= row_capacity_) {
    // In place: fill the newly exposed cells (stale capacity may hold
    // garbage from a previous larger shape).
    int keep_rows = std::min(rows, rows_);
    if (cols > cols_) {
      for (int r = 0; r < keep_rows; ++r) {
        std::fill(Row(r) + cols_, Row(r) + cols, fill);
      }
    }
    for (int r = keep_rows; r < rows; ++r) {
      std::fill(Row(r), Row(r) + cols, fill);
    }
    rows_ = rows;
    cols_ = cols;
    return;
  }
  Grow(rows, cols, fill);
}

void Matrix::AppendRow(const double* row) {
  if (rows_ == row_capacity_) Grow(rows_ + 1, cols_, 0.0);
  else ++rows_;
  std::copy_n(row, cols_, Row(rows_ - 1));
}

Status CholeskyFactorInPlace(Matrix* a) {
  // Blocked right-looking variant: panels of four columns are factored
  // sequentially, then the trailing block receives one fused rank-4
  // update with contiguous (copied-column) inner loops — one pass over
  // the trailing matrix per panel instead of four, and no dot-product
  // latency chain. Every element still receives its subtractions in
  // ascending-column order (the fused update subtracts the four terms
  // sequentially), so the result is bit-for-bit identical to the
  // sequential formulation used by CholeskyExtend.
  int n = a->rows();
  constexpr int kPanel = 4;
  std::vector<double> panel(static_cast<size_t>(kPanel) * n, 0.0);
  for (int j = 0; j < n; j += kPanel) {
    int jb = std::min(kPanel, n - j);
    // Factor the panel columns j..j+jb-1.
    for (int c = 0; c < jb; ++c) {
      int col = j + c;
      // Apply the updates owed by the panel's earlier columns.
      for (int c2 = 0; c2 < c; ++c2) {
        const double* v2 = &panel[static_cast<size_t>(c2) * n];
        double v2_col = v2[col];
        for (int i = col; i < n; ++i) a->Row(i)[col] -= v2[i] * v2_col;
      }
      double diag = a->at(col, col);
      if (diag <= 0.0 || !std::isfinite(diag)) {
        return Status::Internal("Cholesky: matrix not positive definite");
      }
      double l_jj = std::sqrt(diag);
      a->at(col, col) = l_jj;
      double* v = &panel[static_cast<size_t>(c) * n];
      v[col] = l_jj;
      for (int i = col + 1; i < n; ++i) {
        double scaled = a->Row(i)[j + c] / l_jj;
        a->Row(i)[col] = scaled;
        v[i] = scaled;
      }
    }
    // Fused trailing update for columns >= j+jb.
    const double* __restrict__ v0 = &panel[0];
    const double* __restrict__ v1 = &panel[static_cast<size_t>(1) * n];
    const double* __restrict__ v2 = &panel[static_cast<size_t>(2) * n];
    const double* __restrict__ v3 = &panel[static_cast<size_t>(3) * n];
    for (int i = j + jb; i < n; ++i) {
      double* __restrict__ row_i = a->Row(i);
      if (jb == kPanel) {
        double l0 = v0[i], l1 = v1[i], l2 = v2[i], l3 = v3[i];
        for (int k = j + jb; k <= i; ++k) {
          double x = row_i[k];
          x -= l0 * v0[k];
          x -= l1 * v1[k];
          x -= l2 * v2[k];
          x -= l3 * v3[k];
          row_i[k] = x;
        }
      } else {
        for (int c = 0; c < jb; ++c) {
          const double* vc = &panel[static_cast<size_t>(c) * n];
          double l_ic = vc[i];
          for (int k = j + jb; k <= i; ++k) row_i[k] -= l_ic * vc[k];
        }
      }
    }
  }
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < j; ++i) a->at(i, j) = 0.0;  // zero upper triangle
  }
  return Status::OK();
}

Status CholeskyExtend(Matrix* l, const double* row) {
  int n = l->rows();
  // Solve L l_new = row[0..n-1], then the new diagonal — exactly the
  // arithmetic CholeskyFactorInPlace performs for its last row, in the
  // same accumulation order, so extension is bit-for-bit a suffix of a
  // full factorization.
  std::vector<double> l_new(n + 1, 0.0);
  for (int j = 0; j < n; ++j) {
    const double* row_j = l->Row(j);
    double acc = row[j];
    for (int k = 0; k < j; ++k) acc -= l_new[k] * row_j[k];
    l_new[j] = acc / row_j[j];
  }
  double diag = row[n];
  for (int k = 0; k < n; ++k) diag -= l_new[k] * l_new[k];
  if (diag <= 0.0 || !std::isfinite(diag)) {
    return Status::Internal("CholeskyExtend: extension not positive definite");
  }
  l_new[n] = std::sqrt(diag);
  l->ResizePreserve(n + 1, n + 1, 0.0);
  std::copy_n(l_new.data(), n + 1, l->Row(n));
  return Status::OK();
}

void TriangularSolveLower(const Matrix& l, const double* b, double* z) {
  int n = l.rows();
  for (int i = 0; i < n; ++i) {
    const double* row_i = l.Row(i);
    double acc = b[i];
    for (int k = 0; k < i; ++k) acc -= row_i[k] * z[k];
    z[i] = acc / row_i[i];
  }
}

void TriangularSolveLowerTransposed(const Matrix& l, const double* b,
                                    double* z) {
  int n = l.rows();
  for (int i = n - 1; i >= 0; --i) {
    double acc = b[i];
    for (int k = i + 1; k < n; ++k) acc -= l.at(k, i) * z[k];
    z[i] = acc / l.at(i, i);
  }
}

void TriangularSolveLowerMulti(const Matrix& l, Matrix* b) {
  // Rows are processed in groups of four: the shared prefix (columns
  // before the group) reads each solved row once and updates all four
  // group rows in a single fused, vectorizable pass — a 4x cut in
  // cache traffic over the row-at-a-time form. Each output element
  // still receives its subtractions in ascending-k order followed by
  // one division, so per-column results are bit-for-bit what
  // TriangularSolveLower produces.
  int n = l.rows();
  int m = b->cols();
  constexpr int kGroup = 4;
  for (int g = 0; g < n; g += kGroup) {
    int gb = std::min(kGroup, n - g);
    if (gb == kGroup) {
      double* __restrict__ r0 = b->Row(g);
      double* __restrict__ r1 = b->Row(g + 1);
      double* __restrict__ r2 = b->Row(g + 2);
      double* __restrict__ r3 = b->Row(g + 3);
      for (int k = 0; k < g; ++k) {
        const double* __restrict__ b_k = b->Row(k);
        double l0 = l.at(g, k);
        double l1 = l.at(g + 1, k);
        double l2 = l.at(g + 2, k);
        double l3 = l.at(g + 3, k);
        for (int c = 0; c < m; ++c) {
          double x = b_k[c];
          r0[c] -= l0 * x;
          r1[c] -= l1 * x;
          r2[c] -= l2 * x;
          r3[c] -= l3 * x;
        }
      }
    } else {
      for (int r = 0; r < gb; ++r) {
        double* __restrict__ b_r = b->Row(g + r);
        for (int k = 0; k < g; ++k) {
          double l_rk = l.at(g + r, k);
          const double* __restrict__ b_k = b->Row(k);
          for (int c = 0; c < m; ++c) b_r[c] -= l_rk * b_k[c];
        }
      }
    }
    // Finish the group: intra-group subtractions and divisions in row
    // order (row g+1 uses the just-finalized row g, and so on).
    for (int r = 0; r < gb; ++r) {
      int i = g + r;
      double* __restrict__ b_i = b->Row(i);
      for (int k = g; k < i; ++k) {
        double l_ik = l.at(i, k);
        const double* __restrict__ b_k = b->Row(k);
        for (int c = 0; c < m; ++c) b_i[c] -= l_ik * b_k[c];
      }
      double divisor = l.at(i, i);
      for (int c = 0; c < m; ++c) b_i[c] /= divisor;
    }
  }
}

}  // namespace llamatune
