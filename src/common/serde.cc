#include "src/common/serde.h"

#include <cstdio>
#include <cstring>

namespace llamatune {

std::string EncodeDoubleBits(double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value), "double must be 64-bit");
  std::memcpy(&bits, &value, sizeof(bits));
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(bits));
  return std::string(buf);
}

Result<double> DecodeDoubleBits(const std::string& token) {
  if (token.size() != 16 ||
      token.find_first_not_of("0123456789abcdef") != std::string::npos) {
    return Status::InvalidArgument("malformed double bit pattern: " + token);
  }
  uint64_t bits = std::stoull(token, nullptr, 16);
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

std::string EncodeBytes(const std::string& bytes) {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(kHex[c >> 4]);
    out.push_back(kHex[c & 0xf]);
  }
  return out;
}

Result<std::string> DecodeBytes(const std::string& token) {
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  if (token.size() % 2 != 0) {
    return Status::InvalidArgument("DecodeBytes: odd-length hex: " + token);
  }
  std::string out;
  out.reserve(token.size() / 2);
  for (size_t i = 0; i < token.size(); i += 2) {
    int hi = nibble(token[i]);
    int lo = nibble(token[i + 1]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("DecodeBytes: bad hex digit in: " +
                                     token);
    }
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return out;
}

Result<int64_t> ParseInt64(const std::string& token) {
  try {
    size_t pos = 0;
    int64_t v = std::stoll(token, &pos);
    if (pos != token.size()) {
      return Status::InvalidArgument("trailing characters in integer: " +
                                     token);
    }
    return v;
  } catch (const std::exception&) {
    return Status::InvalidArgument("not an integer: " + token);
  }
}

}  // namespace llamatune
