#pragma once

#include <sstream>
#include <string>

namespace llamatune {

/// \brief Severity levels for library logging.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Sets the global minimum severity; messages below it are dropped.
void SetLogLevel(LogLevel level);

/// \brief Current global minimum severity.
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log message emitter; flushes to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace llamatune

#define LT_LOG(level)                                        \
  ::llamatune::internal::LogMessage(::llamatune::LogLevel::k##level, \
                                    __FILE__, __LINE__)
