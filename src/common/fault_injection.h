#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace llamatune {

/// \brief Deterministic, named-site fault injection.
///
/// Production code marks its failure points with a *site name* —
/// "client.send.reset", "eval.crash", "autosave.torn" — and asks the
/// global registry whether this particular hit of that site should
/// fail:
///
/// ```cpp
/// if (FaultInjection::ShouldFail("wal.append.torn")) { /* tear */ }
/// ```
///
/// Disabled (the default), `ShouldFail` is a single relaxed atomic
/// load and a branch: no locks, no allocation, no per-site lookup —
/// safe to leave in release hot paths. Enabled, every call counts the
/// site's hits and fires according to the site's trigger:
///
///  * **schedule** — an explicit list of 0-based hit indices; hit #k
///    fails iff k is listed. Fully reproducible regardless of seed.
///  * **probability** — hit #k fails with probability p, decided by a
///    deterministic per-(site, hit) hash of the global seed, so a
///    given (seed, spec) always yields the same fault sequence no
///    matter how calls interleave across threads or sessions.
///
/// Configuration is a spec string so a forked server process can be
/// configured through the LLAMATUNE_FAULTS environment variable:
///
/// ```
/// seed=42;client.send.reset=p0.1;eval.crash=@2,5;server.recv.short=p0.05
/// ```
///
/// `name=pX` sets probability X in [0,1]; `name=@a,b,c` schedules hit
/// indices a, b, c. Entries are ';'-separated; a bare `seed=N` sets
/// the global seed (default 0).
class FaultInjection {
 public:
  /// True iff this hit of `site` should fail. Counts the hit when
  /// injection is enabled; a pure cheap no-op otherwise.
  static bool ShouldFail(const char* site) {
    if (!enabled_.load(std::memory_order_relaxed)) return false;
    return ShouldFailSlow(site);
  }

  /// Parses a spec string (see class comment) and enables injection.
  /// Returns false on a malformed spec (state is then unchanged).
  static bool Configure(const std::string& spec);

  /// Reads the spec from `env_var` (default LLAMATUNE_FAULTS) and
  /// configures from it; no-op (and true) when unset or empty.
  static bool ConfigureFromEnv(const char* env_var = "LLAMATUNE_FAULTS");

  /// Disables injection and clears all sites and counters.
  static void Reset();

  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Total hits recorded for `site` (0 when unknown or disabled the
  /// whole time). For tests asserting a site was actually exercised.
  static uint64_t HitCount(const std::string& site);

  /// Total faults fired for `site`.
  static uint64_t FireCount(const std::string& site);

 private:
  static bool ShouldFailSlow(const char* site);

  static std::atomic<bool> enabled_;
};

}  // namespace llamatune
