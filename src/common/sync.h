#pragma once

#include <condition_variable>
#include <mutex>

/// \file
/// Annotated synchronization primitives: the only place in the library
/// allowed to touch `std::mutex` / `std::condition_variable` directly
/// (scripts/lint_determinism.py rule `raw-mutex` enforces this).
///
/// The wrappers carry Clang Thread Safety Analysis attributes, so a
/// clang build with `-Wthread-safety -Werror=thread-safety` (the
/// `thread-safety` CI job) proves at compile time that every field
/// marked `GUARDED_BY(mu)` is only touched with `mu` held and that
/// every method marked `REQUIRES(mu)` is only called under it. On
/// compilers without the attributes (gcc) the macros expand to
/// nothing and the wrappers are zero-cost shims over the std types.
///
/// Conventions (see docs/static-analysis.md for the full guide):
///  * every mutex-protected field is annotated `GUARDED_BY(mu_)`;
///  * helpers that assume a caller-held lock are annotated
///    `REQUIRES(mu_)` instead of re-locking;
///  * prefer `MutexLock` over manual Lock/Unlock pairs — it is a
///    `SCOPED_CAPABILITY`, so the analysis tracks its whole scope.

// ---------------------------------------------------------------------------
// Thread-safety annotation macros (no-ops outside clang).
// ---------------------------------------------------------------------------

#if defined(__clang__)
#define LT_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define LT_THREAD_ANNOTATION(x)  // not supported by this compiler
#endif

#define CAPABILITY(x) LT_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY LT_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) LT_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) LT_THREAD_ANNOTATION(pt_guarded_by(x))
#define REQUIRES(...) LT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define ACQUIRE(...) LT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RELEASE(...) LT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  LT_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) LT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) LT_THREAD_ANNOTATION(assert_capability(x))
#define RETURN_CAPABILITY(x) LT_THREAD_ANNOTATION(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  LT_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace llamatune {

/// \brief Annotated std::mutex. Lock/Unlock are public for the rare
/// manual pairing; prefer MutexLock.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// \brief RAII lock over Mutex (the lock_guard of this library).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  Mutex& mu_;
};

/// \brief Condition variable paired with Mutex. Wait atomically
/// releases the lock's mutex and reacquires it before returning, so
/// the caller's capability set is unchanged across the call (no
/// acquire/release annotation is needed or correct here).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// One wakeup-or-spurious-return wait; use the predicate overload
  /// unless you re-check the condition yourself.
  ///
  /// The analysis cannot see which mutex a MutexLock refers to, so
  /// Wait opts out of checking; annotate the *predicate* with
  /// REQUIRES(mu) when it reads guarded fields — its body is still
  /// analyzed, and real callers do hold the lock.
  void Wait(MutexLock& lock) NO_THREAD_SAFETY_ANALYSIS {
    // Adopt the already-held mutex for the duration of the wait, then
    // release the unique_lock's ownership claim so MutexLock's
    // destructor stays the one true unlocker.
    std::unique_lock<std::mutex> native(lock.mu_.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  /// Waits until `pred()` holds (checked with the mutex held).
  template <typename Predicate>
  void Wait(MutexLock& lock, Predicate pred) NO_THREAD_SAFETY_ANALYSIS {
    while (!pred()) Wait(lock);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace llamatune
