#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace llamatune {

/// Clamps x to [lo, hi].
double Clamp(double x, double lo, double hi);

/// Shortest "%g" rendering of a number ("0.2", "16"). Registry keys
/// are built ("svb0.2") and parsed with this exact format — all key
/// producers must share it so keys round-trip.
std::string FormatCompact(double value);

/// Linearly rescales x from [x_lo, x_hi] to [y_lo, y_hi].
/// Degenerate source ranges map to y_lo.
double Rescale(double x, double x_lo, double x_hi, double y_lo, double y_hi);

/// Arithmetic mean; 0 for an empty vector.
double Mean(const std::vector<double>& xs);

/// Population variance; 0 for fewer than two elements.
double Variance(const std::vector<double>& xs);

/// Standard deviation (sqrt of population variance).
double Stddev(const std::vector<double>& xs);

/// Linear-interpolated percentile, p in [0, 100]. Empty input returns 0.
double Percentile(std::vector<double> xs, double p);

/// Standard normal probability density function.
double NormPdf(double x);

/// Standard normal cumulative distribution function.
double NormCdf(double x);

/// Index of the maximum element; -1 for an empty vector.
int ArgMax(const std::vector<double>& xs);

/// Index of the minimum element; -1 for an empty vector.
int ArgMin(const std::vector<double>& xs);

/// Dot product of two equal-length vectors.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// Euclidean (L2) norm.
double Norm2(const std::vector<double>& xs);

/// Running best-so-far transform: out[i] = max(xs[0..i]).
std::vector<double> BestSoFarMax(const std::vector<double>& xs);

/// Running best-so-far transform for minimization: out[i] = min(xs[0..i]).
std::vector<double> BestSoFarMin(const std::vector<double>& xs);

/// A smooth saturating curve in [0,1): x / (x + k). Used by the DBMS
/// performance model for diminishing-returns resources.
double Saturating(double x, double k);

}  // namespace llamatune
