#pragma once

#include <cstddef>
#include <vector>

#include "src/common/status.h"

namespace llamatune {

/// \brief Dense row-major matrix of doubles over flat contiguous
/// storage.
///
/// The shared math-core type: the GP Gram/Cholesky hot path, the
/// surrogate prediction batches, and the DDPG actor/critic networks all
/// run over it. Rows are contiguous, so row-wise kernels and
/// triangular-solve inner loops stream linearly through memory instead
/// of chasing per-row allocations.
class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols, double fill = 0.0)
      : rows_(rows),
        cols_(cols),
        stride_(cols),
        row_capacity_(rows),
        data_(static_cast<size_t>(rows) * cols, fill) {}

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  double& at(int r, int c) {
    return data_[static_cast<size_t>(r) * stride_ + c];
  }
  double at(int r, int c) const {
    return data_[static_cast<size_t>(r) * stride_ + c];
  }

  /// Direct pointer to the start of row `r` (contiguous `cols()`
  /// doubles).
  double* Row(int r) {
    return data_.data() + static_cast<size_t>(r) * stride_;
  }
  const double* Row(int r) const {
    return data_.data() + static_cast<size_t>(r) * stride_;
  }

  /// Raw backing storage. Rows are packed back-to-back only while the
  /// matrix has never grown past its initial shape (stride == cols) —
  /// true for every freshly constructed matrix.
  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  /// y = M x  (x has cols() entries; y has rows() entries).
  std::vector<double> Apply(const std::vector<double>& x) const;

  /// y = M^T x (x has rows() entries; y has cols() entries).
  std::vector<double> ApplyTransposed(const std::vector<double>& x) const;

  /// Resizes to (rows, cols) keeping the overlapping top-left block;
  /// new cells are set to `fill`. Capacity grows geometrically, so the
  /// GP's per-observation growth of its cached squares (Gram geometry,
  /// Cholesky factor) costs amortized O(new cells), not O(n^2)
  /// relayouts per append.
  void ResizePreserve(int rows, int cols, double fill = 0.0);

  /// Appends one row (cols() doubles) to the bottom; construct with
  /// the intended column count first. Zero-column matrices are fine
  /// (the append only bumps rows()). Amortized O(cols).
  void AppendRow(const double* row);

 private:
  /// Re-layouts into a buffer with at least (rows, cols) logical cells,
  /// growing stride and row capacity geometrically.
  void Grow(int rows, int cols, double fill);

  int rows_ = 0;
  int cols_ = 0;
  int stride_ = 0;        // row pitch in doubles (>= cols_)
  int row_capacity_ = 0;  // allocated rows
  std::vector<double> data_;
};

/// \name Flat dense linear algebra (the model-fitting hot path)
/// @{

/// In-place Cholesky factorization of the symmetric positive-definite
/// matrix in `a`: on success `a` holds the lower-triangular L with
/// A = L L^T (upper triangle zeroed). Fails without touching the
/// caller's semantics if A is not positive definite — the buffer is
/// partially overwritten and must be rebuilt before a retry.
Status CholeskyFactorInPlace(Matrix* a);

/// Rank-extends a cached Cholesky factor by one row/column in O(n^2):
/// given the n x n factor L of A and `row` = [A(n,0..n-1), A(n,n)]
/// (n+1 entries — the new matrix row), grows `l` to the (n+1) x (n+1)
/// factor of the extended matrix. The arithmetic matches what a full
/// CholeskyFactorInPlace of the extended matrix would compute for the
/// new row bit-for-bit, so incremental and from-scratch fits agree
/// exactly. Fails (leaving `l` unchanged) when the extension is not
/// positive definite.
Status CholeskyExtend(Matrix* l, const double* row);

/// Solves L z = b (forward substitution) for lower-triangular L.
/// `b` and `z` may alias.
void TriangularSolveLower(const Matrix& l, const double* b, double* z);

/// Solves L^T z = b (backward substitution) for lower-triangular L.
/// `b` and `z` may alias.
void TriangularSolveLowerTransposed(const Matrix& l, const double* b,
                                    double* z);

/// Solves L Z = B for all columns of B at once, in place (B is n x m;
/// each column is an independent right-hand side). One pass over L
/// serves every column, with contiguous row-wise inner loops — this is
/// what lets acquisition scoring solve all candidate k_star columns
/// against the cached factor in a single sweep. Column c of the result
/// is bit-for-bit what TriangularSolveLower would produce for column c
/// alone.
void TriangularSolveLowerMulti(const Matrix& l, Matrix* b);

/// @}

}  // namespace llamatune
