#pragma once

#include <string>
#include <vector>

#include "src/harness/experiment.h"

namespace llamatune {
namespace harness {

/// \brief One row of a paper-style results table.
struct ComparisonRow {
  std::string label;
  Comparison comparison;
};

/// Prints a Tables 5-9-style block: per-row final-performance
/// improvement (mean + [5%, 95%] CI) and time-to-optimal speedup
/// (mean + earliest iteration + CI). `metric_name` labels the left
/// column pair (e.g. "Final Throughput Improvement").
void PrintComparisonTable(const std::string& title,
                          const std::string& metric_name,
                          const std::vector<ComparisonRow>& rows);

/// Prints best-so-far convergence series side by side (Figs. 2/3/6/7/
/// 9/11), sampled every `step` iterations.
void PrintCurves(const std::string& title,
                 const std::vector<std::string>& labels,
                 const std::vector<CurveSummary>& curves, int step = 10);

/// Prints the Fig. 10 style mapping: treatment iteration -> earliest
/// baseline iteration with equal performance.
void PrintConvergenceMapping(const std::string& title,
                             const std::vector<std::string>& labels,
                             const std::vector<std::vector<int>>& mappings,
                             int step = 10);

/// Simple section header for bench output.
void PrintHeader(const std::string& title);

}  // namespace harness
}  // namespace llamatune
