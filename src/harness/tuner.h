#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/objective.h"
#include "src/core/space_adapter.h"
#include "src/core/tuning_session.h"
#include "src/dbsim/simulated_postgres.h"
#include "src/optimizer/optimizer.h"

namespace llamatune {
namespace harness {

/// \brief A fully wired tuning stack: objective + adapter + optimizer
/// + session, assembled by TunerBuilder. Owns every component it
/// created (external objectives stay caller-owned).
///
/// Stacks built with Build() own an evaluable objective and support
/// both the push loop (Run/Step) and the ask/tell protocol. Stacks
/// built with BuildDetached() over a bare ConfigSpace have no
/// objective — the caller drives evaluation through Ask/Tell, and
/// Run/Step are inert (see TuningSession).
class Tuner {
 public:
  /// Runs the session to completion (requires an objective).
  SessionResult Run() { return session_->Run(); }

  /// Single-iteration stepping for incremental drivers.
  bool Step() { return session_->Step(); }

  /// \name Ask/tell passthroughs (see TuningSession for the protocol)
  /// @{
  Result<Trial> Ask() { return session_->Ask(); }
  Result<std::vector<Trial>> AskBatch(int n) { return session_->AskBatch(n); }
  Status Tell(const TrialResult& result) { return session_->Tell(result); }
  Status TellBatch(const std::vector<TrialResult>& results) {
    return session_->TellBatch(results);
  }
  Status Expire(int64_t trial_id) { return session_->Expire(trial_id); }
  std::vector<int64_t> ExpireOverdue(int64_t now_ms) {
    return session_->ExpireOverdue(now_ms);
  }
  std::vector<Trial> PendingSnapshot() const {
    return session_->PendingSnapshot();
  }
  int64_t next_trial_id() const { return session_->next_trial_id(); }
  std::string Save() const { return session_->Save(); }
  Status Restore(const std::string& checkpoint) {
    return session_->Restore(checkpoint);
  }
  bool finished() const { return session_->finished(); }
  /// @}

  /// False for BuildDetached() stacks over a bare ConfigSpace.
  bool has_objective() const { return objective_ != nullptr; }

  /// The attached objective; only valid when has_objective().
  ObjectiveFunction& objective() { return *objective_; }
  const SpaceAdapter& adapter() const { return *adapter_; }
  ::llamatune::Optimizer& optimizer() { return *optimizer_; }
  TuningSession& session() { return *session_; }
  const TuningSession& session() const { return *session_; }

 private:
  friend class TunerBuilder;
  Tuner() = default;

  std::unique_ptr<ObjectiveFunction> owned_objective_;
  ObjectiveFunction* objective_ = nullptr;
  std::unique_ptr<SpaceAdapter> adapter_;
  std::unique_ptr<::llamatune::Optimizer> optimizer_;
  std::unique_ptr<TuningSession> session_;
};

/// \brief Fluent assembly of a tuning stack from registry keys:
///
///   auto tuner = TunerBuilder()
///                    .Workload(dbsim::YcsbA())
///                    .Optimizer("smac")
///                    .Adapter("llamatune")
///                    .Seed(42)
///                    .Iterations(100)
///                    .Build();
///   SessionResult result = tuner.ValueOrDie()->Run();
///
/// The objective is either the bundled simulator (Workload/Version/
/// Target) or any external ObjectiveFunction (Objective()). Adapter
/// and optimizer are resolved through AdapterRegistry and
/// OptimizerRegistry, so everything registered there — including the
/// user's own stages and backends — is addressable by key.
class TunerBuilder {
 public:
  TunerBuilder() = default;

  /// Tunes the bundled simulated PostgreSQL running `workload`.
  TunerBuilder& Workload(dbsim::WorkloadSpec workload);

  /// Simulated PostgreSQL version (default v9.6).
  TunerBuilder& Version(dbsim::PostgresVersion version);

  /// Tuning target; `fixed_rate` (req/s) applies to latency targets.
  TunerBuilder& Target(dbsim::TuningTarget target, double fixed_rate = 0.0);

  /// Full simulator option control (overrides Version/Target so far;
  /// the builder seed still drives the noise seed).
  TunerBuilder& DbOptions(dbsim::SimulatedPostgresOptions options);

  /// Tunes an external system instead of the simulator. Caller keeps
  /// ownership; mutually exclusive with Workload().
  TunerBuilder& Objective(ObjectiveFunction* objective);

  /// Tunes an external system the tuner cannot call into at all: only
  /// its knob space is known, and the caller runs every measurement
  /// through the ask/tell protocol. `maximize` fixes the objective
  /// convention (false for latency-style targets). Caller keeps
  /// ownership of the space; requires BuildDetached(); mutually
  /// exclusive with Workload() and Objective().
  TunerBuilder& Space(const ConfigSpace* space, bool maximize = true);

  /// OptimizerRegistry key (default "smac").
  TunerBuilder& Optimizer(std::string key);

  /// AdapterRegistry key (default "llamatune").
  TunerBuilder& Adapter(std::string key);

  /// Seeds the optimizer, the projection matrix, and simulator noise.
  TunerBuilder& Seed(uint64_t seed);

  TunerBuilder& Iterations(int num_iterations);

  /// Configurations evaluated per step (parallel across simulator
  /// clones when > 1).
  TunerBuilder& BatchSize(int batch_size);

  /// Executor cap for the session's parallel batch evaluation
  /// (0 = shared pool size, 1 = serial; see SessionOptions).
  TunerBuilder& Threads(int num_threads);

  TunerBuilder& EarlyStopping(EarlyStoppingPolicy policy);

  /// Deadline for pending (asked, untold) trials in milliseconds;
  /// 0 (default) disables. See SessionOptions::pending_deadline_ms.
  TunerBuilder& PendingDeadlineMs(int64_t deadline_ms);

  /// Racing (successive-halving) evaluation: each budget iteration
  /// races a cohort through rungs of short runs and commits only the
  /// champion. See SessionOptions::racing and docs/racing.md.
  TunerBuilder& Racing(RacingOptions racing);

  /// Builds the stack. Fails when no objective source was configured,
  /// more than one was, or a registry key is unknown. Requires an
  /// evaluable source (Workload or Objective) — with only Space(),
  /// use BuildDetached().
  Result<std::unique_ptr<Tuner>> Build() const;

  /// Builds an ask/tell handle: the same stack, but the session never
  /// evaluates anything itself — the caller asks for trials, measures
  /// them, and tells the results. Accepts any objective source;
  /// the only way to build from a bare Space(). With a Workload or
  /// Objective source the returned Tuner can still Run/Step.
  Result<std::unique_ptr<Tuner>> BuildDetached() const;

 private:
  Result<std::unique_ptr<Tuner>> BuildImpl(bool allow_detached) const;

  std::optional<dbsim::WorkloadSpec> workload_;
  dbsim::SimulatedPostgresOptions db_options_;
  ObjectiveFunction* external_objective_ = nullptr;
  const ConfigSpace* external_space_ = nullptr;
  bool external_space_maximize_ = true;
  std::string optimizer_key_ = "smac";
  std::string adapter_key_ = "llamatune";
  uint64_t seed_ = 42;
  int num_iterations_ = 100;
  int batch_size_ = 1;
  int num_threads_ = 0;
  std::optional<EarlyStoppingPolicy> early_stopping_;
  int64_t pending_deadline_ms_ = 0;
  std::optional<RacingOptions> racing_;
};

}  // namespace harness
}  // namespace llamatune
