#include "src/harness/tuner.h"

#include <utility>

#include "src/core/adapter_registry.h"
#include "src/optimizer/optimizer_registry.h"

namespace llamatune {
namespace harness {

TunerBuilder& TunerBuilder::Workload(dbsim::WorkloadSpec workload) {
  workload_ = std::move(workload);
  return *this;
}

TunerBuilder& TunerBuilder::Version(dbsim::PostgresVersion version) {
  db_options_.version = version;
  return *this;
}

TunerBuilder& TunerBuilder::Target(dbsim::TuningTarget target,
                                   double fixed_rate) {
  db_options_.target = target;
  db_options_.fixed_rate = fixed_rate;
  return *this;
}

TunerBuilder& TunerBuilder::DbOptions(
    dbsim::SimulatedPostgresOptions options) {
  db_options_ = options;
  return *this;
}

TunerBuilder& TunerBuilder::Objective(ObjectiveFunction* objective) {
  external_objective_ = objective;
  return *this;
}

TunerBuilder& TunerBuilder::Space(const ConfigSpace* space, bool maximize) {
  external_space_ = space;
  external_space_maximize_ = maximize;
  return *this;
}

TunerBuilder& TunerBuilder::Optimizer(std::string key) {
  optimizer_key_ = std::move(key);
  return *this;
}

TunerBuilder& TunerBuilder::Adapter(std::string key) {
  adapter_key_ = std::move(key);
  return *this;
}

TunerBuilder& TunerBuilder::Seed(uint64_t seed) {
  seed_ = seed;
  return *this;
}

TunerBuilder& TunerBuilder::Iterations(int num_iterations) {
  num_iterations_ = num_iterations;
  return *this;
}

TunerBuilder& TunerBuilder::BatchSize(int batch_size) {
  batch_size_ = batch_size;
  return *this;
}

TunerBuilder& TunerBuilder::Threads(int num_threads) {
  num_threads_ = num_threads;
  return *this;
}

TunerBuilder& TunerBuilder::EarlyStopping(EarlyStoppingPolicy policy) {
  early_stopping_ = policy;
  return *this;
}

TunerBuilder& TunerBuilder::PendingDeadlineMs(int64_t deadline_ms) {
  pending_deadline_ms_ = deadline_ms;
  return *this;
}

TunerBuilder& TunerBuilder::Racing(RacingOptions racing) {
  racing_ = racing;
  return *this;
}

Result<std::unique_ptr<Tuner>> TunerBuilder::Build() const {
  return BuildImpl(/*allow_detached=*/false);
}

Result<std::unique_ptr<Tuner>> TunerBuilder::BuildDetached() const {
  return BuildImpl(/*allow_detached=*/true);
}

Result<std::unique_ptr<Tuner>> TunerBuilder::BuildImpl(
    bool allow_detached) const {
  int sources = (workload_.has_value() ? 1 : 0) +
                (external_objective_ != nullptr ? 1 : 0) +
                (external_space_ != nullptr ? 1 : 0);
  if (sources > 1) {
    return Status::InvalidArgument(
        "TunerBuilder: Workload(), Objective() and Space() are mutually "
        "exclusive");
  }
  if (sources == 0) {
    return Status::FailedPrecondition(
        "TunerBuilder: set a Workload() (simulated DBMS), an external "
        "Objective(), or a bare Space() before building");
  }
  if (external_space_ != nullptr && !allow_detached) {
    return Status::FailedPrecondition(
        "TunerBuilder: a bare Space() has nothing to evaluate — use "
        "BuildDetached() and drive the session through Ask/Tell");
  }
  if (num_iterations_ <= 0) {
    return Status::InvalidArgument("TunerBuilder: Iterations() must be > 0");
  }
  if (batch_size_ <= 0) {
    return Status::InvalidArgument("TunerBuilder: BatchSize() must be > 0");
  }

  std::unique_ptr<Tuner> tuner(new Tuner());
  const ConfigSpace* config_space = external_space_;
  if (external_objective_ != nullptr) {
    tuner->objective_ = external_objective_;
    config_space = &external_objective_->config_space();
  } else if (workload_.has_value()) {
    dbsim::SimulatedPostgresOptions db_options = db_options_;
    db_options.noise_seed = seed_;
    tuner->owned_objective_ = std::make_unique<dbsim::SimulatedPostgres>(
        *workload_, db_options);
    tuner->objective_ = tuner->owned_objective_.get();
    config_space = &tuner->objective_->config_space();
  }

  Result<std::unique_ptr<SpaceAdapter>> adapter =
      AdapterRegistry::Global().Create(adapter_key_, config_space, seed_);
  if (!adapter.ok()) return adapter.status();
  tuner->adapter_ = std::move(adapter).ValueOrDie();

  Result<std::unique_ptr<::llamatune::Optimizer>> optimizer =
      OptimizerRegistry::Global().Create(
          optimizer_key_, tuner->adapter_->search_space(), seed_);
  if (!optimizer.ok()) return optimizer.status();
  tuner->optimizer_ = std::move(optimizer).ValueOrDie();

  SessionOptions session_options;
  session_options.num_iterations = num_iterations_;
  session_options.batch_size = batch_size_;
  session_options.num_threads = num_threads_;
  session_options.early_stopping = early_stopping_;
  session_options.pending_deadline_ms = pending_deadline_ms_;
  session_options.racing = racing_;
  LT_RETURN_NOT_OK(session_options.Validate());
  if (tuner->objective_ != nullptr) {
    tuner->session_ = std::make_unique<TuningSession>(
        tuner->objective_, tuner->adapter_.get(), tuner->optimizer_.get(),
        session_options);
  } else {
    tuner->session_ = std::make_unique<TuningSession>(
        config_space, external_space_maximize_, tuner->adapter_.get(),
        tuner->optimizer_.get(), session_options);
  }
  return tuner;
}

}  // namespace harness
}  // namespace llamatune
