#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/core/tuning_session.h"
#include "src/dbsim/simulated_postgres.h"

namespace llamatune {
namespace harness {

/// \brief A full experiment cell: one (workload, optimizer, adapter,
/// target, version) combination run over several seeds with the
/// paper's session settings (100 iterations, 10 LHS init, crash
/// penalty, 5 seeds).
///
/// Optimizer and adapter are named by registry key ("smac",
/// "hesbo16+svb0.2+bucket10000", ...), so an experiment cell is fully
/// described by strings — anything registered in OptimizerRegistry /
/// AdapterRegistry is addressable without touching this struct. (The
/// pre-registry enum/bool shim is gone; the legacy adapters survive
/// only as bit-for-bit regression oracles in
/// tests/adapter_pipeline_test.cc.)
struct ExperimentSpec {
  dbsim::WorkloadSpec workload;
  dbsim::PostgresVersion version = dbsim::PostgresVersion::kV96;
  dbsim::TuningTarget target = dbsim::TuningTarget::kThroughput;
  double fixed_rate = 0.0;  ///< req/s, latency target only

  /// OptimizerRegistry key.
  std::string optimizer_key = "smac";
  /// AdapterRegistry key ("identity" = vanilla baseline; "llamatune" =
  /// the paper's full pipeline).
  std::string adapter_key = "identity";

  /// Configurations evaluated per session step (parallel across
  /// simulator clones when > 1).
  int batch_size = 1;

  /// Executor cap over the shared thread pool for the sharding of
  /// seeds across cores in RunExperiment and each session's parallel
  /// batch evaluation. 0 = pool size (all cores), 1 = serial at those
  /// two levels. Optimizer-internal parallel scoring (GP restarts /
  /// candidate batches) is capped separately by GpOptions::num_threads
  /// / SmacOptions::num_threads — or globally by sizing the shared
  /// pool via the LLAMATUNE_NUM_THREADS environment variable. Seed
  /// results are aggregated in seed order, so every setting produces
  /// identical output.
  int num_threads = 0;

  int num_iterations = 100;
  int num_seeds = 5;
  uint64_t base_seed = 42;
  std::optional<EarlyStoppingPolicy> early_stopping;
};

/// \brief Aggregated outcome across seeds.
struct MultiSeedResult {
  std::vector<SessionResult> sessions;
  /// Per-seed best-so-far curves of the *internal objective*
  /// (maximize convention; negate for latency presentation).
  std::vector<std::vector<double>> objective_curves;
  /// Per-seed best-so-far curves of the measured metric.
  std::vector<std::vector<double>> measured_curves;
  double mean_final_objective = 0.0;
  double mean_final_measured = 0.0;
  double mean_optimizer_seconds = 0.0;
};

/// Runs every seed of the experiment cell.
MultiSeedResult RunExperiment(const ExperimentSpec& spec);

/// \brief Paper-style treatment-vs-baseline summary: final-performance
/// improvement and time-to-optimal speedup, with [5%, 95%] CIs over
/// seeds (paper Tables 5-9).
struct Comparison {
  double mean_improvement_pct = 0.0;
  double improvement_ci_lo = 0.0;
  double improvement_ci_hi = 0.0;
  double mean_speedup = 0.0;
  double speedup_ci_lo = 0.0;
  double speedup_ci_hi = 0.0;
  /// Mean earliest iteration at which the treatment beats the
  /// baseline's final optimum (paper's bracketed "[N iter]").
  double mean_iterations_to_optimal = 0.0;
};

Comparison Compare(const MultiSeedResult& baseline,
                   const MultiSeedResult& treatment);

/// Mean and [5, 95] percentile envelope across per-seed curves,
/// truncated to the shortest curve.
struct CurveSummary {
  std::vector<double> mean;
  std::vector<double> lo;
  std::vector<double> hi;
};

CurveSummary SummarizeCurves(const std::vector<std::vector<double>>& curves);

/// Fig. 10 helper: for each treatment iteration, the earliest baseline
/// iteration reaching the same mean best-so-far (clamped to the curve
/// length when the baseline never reaches it).
std::vector<int> ConvergenceMapping(const CurveSummary& treatment,
                                    const CurveSummary& baseline);

}  // namespace harness
}  // namespace llamatune
