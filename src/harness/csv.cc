#include "src/harness/csv.h"

#include <cstdio>
#include <sstream>

namespace llamatune {
namespace harness {

std::string CurvesToCsv(const std::vector<std::string>& labels,
                        const std::vector<CurveSummary>& curves) {
  std::ostringstream out;
  out << "iteration";
  for (const std::string& label : labels) {
    out << "," << label << "_mean," << label << "_p5," << label << "_p95";
  }
  out << "\n";
  size_t len = 0;
  for (const CurveSummary& c : curves) len = std::max(len, c.mean.size());
  for (size_t i = 0; i < len; ++i) {
    out << (i + 1);
    for (const CurveSummary& c : curves) {
      if (i < c.mean.size()) {
        out << "," << c.mean[i] << "," << c.lo[i] << "," << c.hi[i];
      } else {
        out << ",,,";
      }
    }
    out << "\n";
  }
  return out.str();
}

std::string SeedCurvesToCsv(const std::vector<std::vector<double>>& curves) {
  std::ostringstream out;
  out << "iteration";
  for (size_t s = 0; s < curves.size(); ++s) out << ",seed" << s;
  out << "\n";
  size_t len = 0;
  for (const auto& c : curves) len = std::max(len, c.size());
  for (size_t i = 0; i < len; ++i) {
    out << (i + 1);
    for (const auto& c : curves) {
      if (i < c.size()) {
        out << "," << c[i];
      } else {
        out << ",";
      }
    }
    out << "\n";
  }
  return out.str();
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::Internal("cannot open '" + path + "' for writing");
  }
  size_t written = std::fwrite(content.data(), 1, content.size(), file);
  std::fclose(file);
  if (written != content.size()) {
    return Status::Internal("short write to '" + path + "'");
  }
  return Status::OK();
}

}  // namespace harness
}  // namespace llamatune
