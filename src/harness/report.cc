#include "src/harness/report.h"

#include <cstdio>

namespace llamatune {
namespace harness {

void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

void PrintComparisonTable(const std::string& title,
                          const std::string& metric_name,
                          const std::vector<ComparisonRow>& rows) {
  PrintHeader(title);
  std::printf("%-10s | %s            | Time-to-Optimal Speedup\n", "Workload",
              metric_name.c_str());
  std::printf("%-10s | %-10s %-18s | %-18s %s\n", "", "Average",
              "[5%, 95%] CI", "Average", "[5%, 95%] CI");
  std::printf("-----------+--------------------------------+----------------"
              "------------\n");
  for (const ComparisonRow& row : rows) {
    const Comparison& c = row.comparison;
    std::printf(
        "%-10s | %8.2f%%  [%6.2f%%, %6.2f%%] | %5.2fx [%3.0f iter]  "
        "[%0.1fx, %0.1fx]\n",
        row.label.c_str(), c.mean_improvement_pct, c.improvement_ci_lo,
        c.improvement_ci_hi, c.mean_speedup, c.mean_iterations_to_optimal,
        c.speedup_ci_lo, c.speedup_ci_hi);
  }
}

void PrintCurves(const std::string& title,
                 const std::vector<std::string>& labels,
                 const std::vector<CurveSummary>& curves, int step) {
  PrintHeader(title);
  std::printf("%-6s", "iter");
  for (const std::string& label : labels) std::printf(" | %-22s", label.c_str());
  std::printf("\n");
  size_t len = 0;
  for (const CurveSummary& c : curves) len = std::max(len, c.mean.size());
  for (size_t i = 0; i < len; i += step) {
    size_t idx = (i == 0) ? step - 1 : i + step - 1;  // report end of window
    idx = std::min(idx, len - 1);
    std::printf("%-6zu", idx + 1);
    for (const CurveSummary& c : curves) {
      if (idx < c.mean.size()) {
        std::printf(" | %9.1f [%8.1f,%8.1f]", c.mean[idx], c.lo[idx],
                    c.hi[idx]);
      } else {
        std::printf(" | %-22s", "-");
      }
    }
    std::printf("\n");
    if (idx + 1 >= len) break;
  }
}

void PrintConvergenceMapping(const std::string& title,
                             const std::vector<std::string>& labels,
                             const std::vector<std::vector<int>>& mappings,
                             int step) {
  PrintHeader(title);
  std::printf("%-14s", "treat-iter");
  for (const std::string& label : labels) std::printf(" %-10s", label.c_str());
  std::printf("\n");
  size_t len = 0;
  for (const auto& m : mappings) len = std::max(len, m.size());
  for (size_t i = step - 1; i < len; i += step) {
    std::printf("%-14zu", i + 1);
    for (const auto& m : mappings) {
      if (i < m.size()) {
        std::printf(" %-10d", m[i]);
      } else {
        std::printf(" %-10s", "-");
      }
    }
    std::printf("\n");
  }
}

}  // namespace harness
}  // namespace llamatune
