#include "src/harness/experiment.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "src/common/math_util.h"
#include "src/dbsim/metrics.h"
#include "src/optimizer/best_config.h"
#include "src/optimizer/ddpg.h"
#include "src/optimizer/gp_bo.h"
#include "src/optimizer/random_search.h"
#include "src/optimizer/smac.h"

namespace llamatune {
namespace harness {

const char* OptimizerKindName(OptimizerKind kind) {
  switch (kind) {
    case OptimizerKind::kSmac:
      return "SMAC";
    case OptimizerKind::kGpBo:
      return "GP-BO";
    case OptimizerKind::kDdpg:
      return "DDPG";
    case OptimizerKind::kRandom:
      return "Random";
    case OptimizerKind::kBestConfig:
      return "BestConfig";
  }
  return "?";
}

namespace {

std::unique_ptr<Optimizer> MakeOptimizer(OptimizerKind kind,
                                         const SearchSpace& space,
                                         uint64_t seed) {
  switch (kind) {
    case OptimizerKind::kSmac:
      return std::make_unique<SmacOptimizer>(space, SmacOptions{}, seed);
    case OptimizerKind::kGpBo:
      return std::make_unique<GpBoOptimizer>(space, GpBoOptions{}, seed);
    case OptimizerKind::kDdpg: {
      DdpgOptions options;
      options.state_dim = dbsim::kNumMetrics;
      return std::make_unique<DdpgOptimizer>(space, options, seed);
    }
    case OptimizerKind::kRandom:
      return std::make_unique<RandomSearchOptimizer>(space, seed);
    case OptimizerKind::kBestConfig:
      return std::make_unique<BestConfigOptimizer>(space,
                                                   BestConfigOptions{}, seed);
  }
  return nullptr;
}

}  // namespace

MultiSeedResult RunExperiment(const ExperimentSpec& spec) {
  MultiSeedResult result;
  for (int s = 0; s < spec.num_seeds; ++s) {
    uint64_t seed = spec.base_seed + static_cast<uint64_t>(s) * 1000003ULL;

    dbsim::SimulatedPostgresOptions db_options;
    db_options.version = spec.version;
    db_options.target = spec.target;
    db_options.fixed_rate = spec.fixed_rate;
    db_options.noise_seed = seed;
    dbsim::SimulatedPostgres objective(spec.workload, db_options);

    std::unique_ptr<SpaceAdapter> adapter;
    if (spec.use_llamatune) {
      LlamaTuneOptions lt = spec.llamatune;
      // The projection matrix is regenerated per session seed (paper:
      // "different random seeds as input to our optimizer").
      lt.projection_seed = seed;
      adapter = std::make_unique<LlamaTuneAdapter>(&objective.config_space(),
                                                   lt);
    } else {
      adapter = std::make_unique<IdentityAdapter>(&objective.config_space(),
                                                  spec.identity);
    }

    std::unique_ptr<Optimizer> optimizer =
        MakeOptimizer(spec.optimizer, adapter->search_space(), seed);

    SessionOptions session_options;
    session_options.num_iterations = spec.num_iterations;
    session_options.early_stopping = spec.early_stopping;
    TuningSession session(&objective, adapter.get(), optimizer.get(),
                          session_options);
    SessionResult session_result = session.Run();

    result.objective_curves.push_back(
        session_result.kb.BestSoFarObjective());
    result.measured_curves.push_back(session_result.kb.BestSoFarMeasured());
    result.mean_optimizer_seconds += session_result.optimizer_seconds;
    result.sessions.push_back(std::move(session_result));
  }
  int n = static_cast<int>(result.sessions.size());
  if (n > 0) {
    double obj = 0.0, meas = 0.0;
    for (const auto& curve : result.objective_curves) obj += curve.back();
    for (const auto& curve : result.measured_curves) meas += curve.back();
    result.mean_final_objective = obj / n;
    result.mean_final_measured = meas / n;
    result.mean_optimizer_seconds /= n;
  }
  return result;
}

Comparison Compare(const MultiSeedResult& baseline,
                   const MultiSeedResult& treatment) {
  Comparison cmp;
  double baseline_final = baseline.mean_final_objective;
  double denom = std::max(std::abs(baseline_final), 1e-12);

  std::vector<double> improvements;
  std::vector<double> speedups;
  std::vector<double> iters;
  for (const auto& curve : treatment.objective_curves) {
    improvements.push_back((curve.back() - baseline_final) / denom * 100.0);
    int total = static_cast<int>(curve.size());
    int first = total;  // 1-based iteration of first crossing
    for (int i = 0; i < total; ++i) {
      if (curve[i] >= baseline_final) {
        first = i + 1;
        break;
      }
    }
    iters.push_back(first);
    speedups.push_back(static_cast<double>(total) / first);
  }
  cmp.mean_improvement_pct = Mean(improvements);
  cmp.improvement_ci_lo = Percentile(improvements, 5.0);
  cmp.improvement_ci_hi = Percentile(improvements, 95.0);
  cmp.mean_speedup = Mean(speedups);
  cmp.speedup_ci_lo = Percentile(speedups, 5.0);
  cmp.speedup_ci_hi = Percentile(speedups, 95.0);
  cmp.mean_iterations_to_optimal = Mean(iters);
  return cmp;
}

CurveSummary SummarizeCurves(const std::vector<std::vector<double>>& curves) {
  CurveSummary summary;
  if (curves.empty()) return summary;
  size_t len = curves[0].size();
  for (const auto& curve : curves) len = std::min(len, curve.size());
  summary.mean.resize(len);
  summary.lo.resize(len);
  summary.hi.resize(len);
  for (size_t i = 0; i < len; ++i) {
    std::vector<double> column;
    column.reserve(curves.size());
    for (const auto& curve : curves) column.push_back(curve[i]);
    summary.mean[i] = Mean(column);
    summary.lo[i] = Percentile(column, 5.0);
    summary.hi[i] = Percentile(column, 95.0);
  }
  return summary;
}

std::vector<int> ConvergenceMapping(const CurveSummary& treatment,
                                    const CurveSummary& baseline) {
  std::vector<int> mapping(treatment.mean.size());
  int blen = static_cast<int>(baseline.mean.size());
  for (size_t i = 0; i < treatment.mean.size(); ++i) {
    int found = blen;
    for (int j = 0; j < blen; ++j) {
      if (baseline.mean[j] >= treatment.mean[i]) {
        found = j + 1;
        break;
      }
    }
    mapping[i] = found;
  }
  return mapping;
}

}  // namespace harness
}  // namespace llamatune
