#include "src/harness/experiment.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "src/common/math_util.h"
#include "src/common/thread_pool.h"
#include "src/harness/tuner.h"

namespace llamatune {
namespace harness {

MultiSeedResult RunExperiment(const ExperimentSpec& spec) {
  const std::string& optimizer_key = spec.optimizer_key;
  const std::string& adapter_key = spec.adapter_key;

  // Sessions are fully independent (each builds its own objective,
  // adapter, and optimizer from the per-seed seed), so seeds shard
  // across the pool; slot-indexed results + in-order aggregation below
  // keep the output identical to the sequential loop.
  std::vector<SessionResult> sessions(spec.num_seeds);
  ThreadPool::Global().ParallelFor(
      spec.num_seeds,
      [&](int s) {
        // The projection matrix (via the session seed) is regenerated
        // per seed (paper: "different random seeds as input to our
        // optimizer").
        uint64_t seed = spec.base_seed + static_cast<uint64_t>(s) * 1000003ULL;

        TunerBuilder builder;
        builder.Workload(spec.workload)
            .Version(spec.version)
            .Target(spec.target, spec.fixed_rate)
            .Optimizer(optimizer_key)
            .Adapter(adapter_key)
            .Seed(seed)
            .Iterations(spec.num_iterations)
            .BatchSize(spec.batch_size)
            .Threads(spec.num_threads);
        if (spec.early_stopping.has_value()) {
          builder.EarlyStopping(*spec.early_stopping);
        }
        // Aborts with the status message on a bad registry key — the
        // harness API has no error channel (ValueOrDie in operator*).
        Result<std::unique_ptr<Tuner>> tuner = builder.Build();
        sessions[s] = (*tuner)->Run();
      },
      spec.num_threads);

  MultiSeedResult result;
  for (SessionResult& session_result : sessions) {
    result.objective_curves.push_back(session_result.kb.BestSoFarObjective());
    result.measured_curves.push_back(session_result.kb.BestSoFarMeasured());
    result.mean_optimizer_seconds += session_result.optimizer_seconds;
    result.sessions.push_back(std::move(session_result));
  }
  int n = static_cast<int>(result.sessions.size());
  if (n > 0) {
    double obj = 0.0, meas = 0.0;
    for (const auto& curve : result.objective_curves) obj += curve.back();
    for (const auto& curve : result.measured_curves) meas += curve.back();
    result.mean_final_objective = obj / n;
    result.mean_final_measured = meas / n;
    result.mean_optimizer_seconds /= n;
  }
  return result;
}

Comparison Compare(const MultiSeedResult& baseline,
                   const MultiSeedResult& treatment) {
  Comparison cmp;
  double baseline_final = baseline.mean_final_objective;
  double denom = std::max(std::abs(baseline_final), 1e-12);

  std::vector<double> improvements;
  std::vector<double> speedups;
  std::vector<double> iters;
  for (const auto& curve : treatment.objective_curves) {
    improvements.push_back((curve.back() - baseline_final) / denom * 100.0);
    int total = static_cast<int>(curve.size());
    int first = total;  // 1-based iteration of first crossing
    for (int i = 0; i < total; ++i) {
      if (curve[i] >= baseline_final) {
        first = i + 1;
        break;
      }
    }
    iters.push_back(first);
    speedups.push_back(static_cast<double>(total) / first);
  }
  cmp.mean_improvement_pct = Mean(improvements);
  cmp.improvement_ci_lo = Percentile(improvements, 5.0);
  cmp.improvement_ci_hi = Percentile(improvements, 95.0);
  cmp.mean_speedup = Mean(speedups);
  cmp.speedup_ci_lo = Percentile(speedups, 5.0);
  cmp.speedup_ci_hi = Percentile(speedups, 95.0);
  cmp.mean_iterations_to_optimal = Mean(iters);
  return cmp;
}

CurveSummary SummarizeCurves(const std::vector<std::vector<double>>& curves) {
  CurveSummary summary;
  if (curves.empty()) return summary;
  size_t len = curves[0].size();
  for (const auto& curve : curves) len = std::min(len, curve.size());
  summary.mean.resize(len);
  summary.lo.resize(len);
  summary.hi.resize(len);
  for (size_t i = 0; i < len; ++i) {
    std::vector<double> column;
    column.reserve(curves.size());
    for (const auto& curve : curves) column.push_back(curve[i]);
    summary.mean[i] = Mean(column);
    summary.lo[i] = Percentile(column, 5.0);
    summary.hi[i] = Percentile(column, 95.0);
  }
  return summary;
}

std::vector<int> ConvergenceMapping(const CurveSummary& treatment,
                                    const CurveSummary& baseline) {
  std::vector<int> mapping(treatment.mean.size());
  int blen = static_cast<int>(baseline.mean.size());
  for (size_t i = 0; i < treatment.mean.size(); ++i) {
    int found = blen;
    for (int j = 0; j < blen; ++j) {
      if (baseline.mean[j] >= treatment.mean[i]) {
        found = j + 1;
        break;
      }
    }
    mapping[i] = found;
  }
  return mapping;
}

}  // namespace harness
}  // namespace llamatune
