#pragma once

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/harness/experiment.h"

namespace llamatune {
namespace harness {

/// \brief Renders labelled best-so-far curve summaries as CSV
/// (iteration, then mean/lo/hi per series) — the plottable artifact
/// behind each figure bench.
std::string CurvesToCsv(const std::vector<std::string>& labels,
                        const std::vector<CurveSummary>& curves);

/// \brief Renders per-seed raw curves (iteration, seed0..seedN).
std::string SeedCurvesToCsv(const std::vector<std::vector<double>>& curves);

/// \brief Writes `content` to `path`. Fails with an error Status on
/// I/O problems.
Status WriteFile(const std::string& path, const std::string& content);

}  // namespace harness
}  // namespace llamatune
