#include "src/model/sparse_gp.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/math_util.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"

namespace llamatune {

namespace {
constexpr double kPi = 3.14159265358979323846;
/// Base diagonal jitter on K_uu. The inducing Gram block has no noise
/// nugget of its own (noise lives on the FITC diagonal), so a small
/// fixed jitter keeps near-duplicate inducing points factorable; the
/// predictor build escalates it like the exact GP's FactorFull.
constexpr double kInducingJitter = 1e-8;
}  // namespace

SparseGaussianProcess::SparseGaussianProcess(const SearchSpace& space,
                                             GpOptions options, uint64_t seed)
    : space_(space),
      options_(options),
      geometry_(space_),
      seed_(seed),
      train_cont_(0, geometry_.num_cont),
      train_cat_(0, geometry_.num_cat) {}

void SparseGaussianProcess::Reset() {
  n_ = 0;
  train_cont_ = Matrix(0, geometry_.num_cont);
  train_cat_ = Matrix(0, geometry_.num_cat);
  ys_.clear();
  ys_std_.clear();
  m_ = 0;
  inducing_.clear();
  ind_cont_t_ = Matrix();
  ind_cat_t_ = Matrix();
  cross_s0_ = Matrix();
  cross_mm_ = Matrix();
  ind_s0_ = Matrix();
  ind_mm_ = Matrix();
  params_ = KernelParams{};
  lu_ = Matrix();
  b_ = Matrix();
  fitc_inv_.clear();
  lm_ = Matrix();
  w_.clear();
  fit_count_ = 0;
  y_mean_ = 0.0;
  y_std_ = 1.0;
  lml_ = 0.0;
  fitted_ = false;
  fitted_n_ = 0;
}

void SparseGaussianProcess::AddObservation(const std::vector<double>& x,
                                           double y) {
  std::vector<double> cont(geometry_.num_cont);
  std::vector<double> cat(geometry_.num_cat);
  SplitPoint(geometry_, x.data(), cont.data(), cat.data());
  train_cont_.AppendRow(cont.data());
  train_cat_.AppendRow(cat.data());
  ys_.push_back(y);
  ++n_;
}

void SparseGaussianProcess::SelectInducing() {
  m_ = std::min(std::max(1, options_.num_inducing), n_);
  inducing_.clear();
  inducing_.reserve(m_);
  // Farthest-point traversal seeded at the first observation: each
  // round adds the training point with the largest distance to the
  // already-selected set (squared scaled continuous distance plus raw
  // categorical mismatch count — the same normalized geometry the
  // kernel runs on). Pure index arithmetic, ties to the lowest index:
  // the selection is a deterministic function of the history alone.
  inducing_.push_back(0);
  std::vector<double> min_dist(n_, std::numeric_limits<double>::infinity());
  int last = 0;
  for (int round = 1; round < m_; ++round) {
    const double* cont_l = train_cont_.Row(last);
    const double* cat_l = train_cat_.Row(last);
    int next = -1;
    double next_dist = -1.0;
    for (int i = 0; i < n_; ++i) {
      double d = SquaredDistance(train_cont_.Row(i), cont_l,
                                 geometry_.num_cont);
      if (geometry_.num_cat > 0) {
        d += CountMismatches(train_cat_.Row(i), cat_l, geometry_.num_cat);
      }
      if (d < min_dist[i]) min_dist[i] = d;
      if (min_dist[i] > next_dist) {
        next_dist = min_dist[i];
        next = i;
      }
    }
    // All remaining points coincide with selected ones: a smaller
    // inducing set already covers the history exactly.
    if (next < 0 || next_dist <= 0.0) break;
    inducing_.push_back(next);
    last = next;
  }
  m_ = static_cast<int>(inducing_.size());
}

void SparseGaussianProcess::BuildCrossGeometry() {
  bool track_mismatch = geometry_.num_cat > 0;
  ind_cont_t_ = Matrix(geometry_.num_cont, m_);
  ind_cat_t_ = Matrix(geometry_.num_cat, m_);
  for (int u = 0; u < m_; ++u) {
    int idx = inducing_[u];
    for (int d = 0; d < geometry_.num_cont; ++d) {
      ind_cont_t_.at(d, u) = train_cont_.at(idx, d);
    }
    for (int d = 0; d < geometry_.num_cat; ++d) {
      ind_cat_t_.at(d, u) = train_cat_.at(idx, d);
    }
  }
  cross_s0_ = Matrix(n_, m_);
  if (track_mismatch) cross_mm_ = Matrix(n_, m_);
  for (int i = 0; i < n_; ++i) {
    const double* cont_i = train_cont_.Row(i);
    const double* cat_i = train_cat_.Row(i);
    double* s0_row = cross_s0_.Row(i);
    for (int u = 0; u < m_; ++u) {
      double sq = SquaredDistance(cont_i, train_cont_.Row(inducing_[u]),
                                  geometry_.num_cont);
      s0_row[u] = std::sqrt(5.0 * sq);
    }
    if (track_mismatch) {
      double* mm_row = cross_mm_.Row(i);
      for (int u = 0; u < m_; ++u) {
        mm_row[u] = CountMismatches(cat_i, train_cat_.Row(inducing_[u]),
                                    geometry_.num_cat);
      }
    }
  }
  // The inducing-inducing block is just the cross rows at the inducing
  // indices.
  ind_s0_ = Matrix(m_, m_);
  if (track_mismatch) ind_mm_ = Matrix(m_, m_);
  for (int u = 0; u < m_; ++u) {
    const double* s0_row = cross_s0_.Row(inducing_[u]);
    for (int v = 0; v < m_; ++v) ind_s0_.at(u, v) = s0_row[v];
    if (track_mismatch) {
      const double* mm_row = cross_mm_.Row(inducing_[u]);
      for (int v = 0; v < m_; ++v) ind_mm_.at(u, v) = mm_row[v];
    }
  }
}

namespace {

/// Shared FITC assembly: factors K_uu + jitter, solves B = L_u^-1 K_uf,
/// builds the FITC diagonal inverse and M = I + B D^-1 B^T, and factors
/// M. Returns false if either factorization fails at this jitter.
struct FitcParts {
  Matrix lu;                    // chol(K_uu + jitter)
  Matrix b;                     // L_u^-1 K_uf (m x n)
  std::vector<double> d_inv;    // FITC diagonal inverse (n)
  double sum_log_d = 0.0;       // sum log d_i
  Matrix lm;                    // chol(I + B D^-1 B^T)
};

bool BuildFitcParts(const BoundKernel& kernel, const KernelParams& params,
                    const Matrix& ind_s0, const Matrix& ind_mm,
                    const Matrix& cross_s0, const Matrix& cross_mm,
                    int n, int m, bool track_mismatch, double jitter,
                    int num_threads, FitcParts* out) {
  // K_uu (lower triangle) + jitter.
  out->lu = Matrix(m, m);
  for (int u = 0; u < m; ++u) {
    double* row = out->lu.Row(u);
    const double* s0_row = ind_s0.Row(u);
    for (int v = 0; v <= u; ++v) row[v] = kernel.MaternFromS0(s0_row[v]);
    if (track_mismatch) {
      const double* mm_row = ind_mm.Row(u);
      for (int v = 0; v <= u; ++v) row[v] *= kernel.HammingFactor(mm_row[v]);
    }
    row[u] += jitter;
  }
  if (!CholeskyFactorInPlace(&out->lu).ok()) return false;

  // B = L_u^-1 K_uf, all n columns in one sweep.
  out->b = Matrix(m, n);
  for (int u = 0; u < m; ++u) {
    double* b_row = out->b.Row(u);
    for (int i = 0; i < n; ++i) {
      double k = kernel.MaternFromS0(cross_s0.at(i, u));
      if (track_mismatch) k *= kernel.HammingFactor(cross_mm.at(i, u));
      b_row[i] = k;
    }
  }
  TriangularSolveLowerMulti(out->lu, &out->b);

  // FITC diagonal d_i = k_ii - q_ii + noise, q_ii = sum_u B(u,i)^2.
  // q_ii <= k_ii in exact arithmetic (jitter only lowers it), so d_i
  // >= noise; the floor guards rounding.
  double k_ii = kernel.FromDistance(0.0, 0.0);
  out->d_inv.assign(n, 0.0);
  std::vector<double> q(n, 0.0);
  for (int u = 0; u < m; ++u) {
    const double* b_row = out->b.Row(u);
    for (int i = 0; i < n; ++i) q[i] += b_row[i] * b_row[i];
  }
  out->sum_log_d = 0.0;
  for (int i = 0; i < n; ++i) {
    double d = std::max(k_ii - q[i] + params.noise_variance, 1e-12);
    out->d_inv[i] = 1.0 / d;
    out->sum_log_d += std::log(d);
  }

  // M = I + B D^-1 B^T (lower triangle). Row-parallel: each (u, v)
  // entry is an index-ordered reduction over i, so the result is
  // independent of the executor count.
  out->lm = Matrix(m, m);
  const Matrix& b = out->b;
  const std::vector<double>& d_inv = out->d_inv;
  Matrix* lm = &out->lm;
  ThreadPool::Global().ParallelFor(
      m,
      [&, lm](int u) {
        const double* b_u = b.Row(u);
        double* row = lm->Row(u);
        for (int v = 0; v <= u; ++v) {
          const double* b_v = b.Row(v);
          double acc = 0.0;
          for (int i = 0; i < n; ++i) acc += b_u[i] * b_v[i] * d_inv[i];
          row[v] = acc;
        }
        row[u] += 1.0;
      },
      num_threads);
  return CholeskyFactorInPlace(&out->lm).ok();
}

/// FITC log marginal likelihood from assembled parts:
/// -1/2 [y^T D^-1 y - g^T g] - 1/2 [sum log d_i + 2 sum log L_m,ii]
/// - n/2 log 2pi, with g = L_m^-1 B D^-1 y (the matrix determinant
/// lemma through the same factors the predictor uses). Shared by the
/// restart scoring and the final fit, so the stored diagnostic can
/// never diverge from the value the restarts optimized. `g_out`, when
/// non-null, receives g for the predictor's w = L_m^-T g solve.
double FitcLmlFromParts(const FitcParts& parts,
                        const std::vector<double>& ys_std, int n, int m,
                        std::vector<double>* g_out) {
  std::vector<double> r(m, 0.0);
  for (int u = 0; u < m; ++u) {
    const double* b_row = parts.b.Row(u);
    double acc = 0.0;
    for (int i = 0; i < n; ++i) acc += b_row[i] * parts.d_inv[i] * ys_std[i];
    r[u] = acc;
  }
  std::vector<double> g(m, 0.0);
  TriangularSolveLower(parts.lm, r.data(), g.data());
  double quad = 0.0;
  for (int i = 0; i < n; ++i) quad += ys_std[i] * ys_std[i] * parts.d_inv[i];
  for (int u = 0; u < m; ++u) quad -= g[u] * g[u];
  double logdet = parts.sum_log_d;
  for (int u = 0; u < m; ++u) logdet += 2.0 * std::log(parts.lm.at(u, u));
  if (g_out != nullptr) *g_out = std::move(g);
  return -0.5 * quad - 0.5 * logdet -
         0.5 * static_cast<double>(n) * std::log(2.0 * kPi);
}

}  // namespace

double SparseGaussianProcess::EvaluateFitcLml(
    const KernelParams& params) const {
  BoundKernel kernel(geometry_, params);
  FitcParts parts;
  // Serial inner build: EvaluateFitcLml itself runs inside the
  // restart ParallelFor.
  if (!BuildFitcParts(kernel, params, ind_s0_, ind_mm_, cross_s0_, cross_mm_,
                      n_, m_, geometry_.num_cat > 0, kInducingJitter,
                      /*num_threads=*/1, &parts)) {
    return -std::numeric_limits<double>::infinity();
  }
  return FitcLmlFromParts(parts, ys_std_, n_, m_, nullptr);
}

Status SparseGaussianProcess::FactorPredictor(const KernelParams& params) {
  BoundKernel kernel(geometry_, params);
  double jitter = kInducingJitter;
  for (int attempt = 0; attempt < 6; ++attempt) {
    FitcParts parts;
    if (BuildFitcParts(kernel, params, ind_s0_, ind_mm_, cross_s0_, cross_mm_,
                       n_, m_, geometry_.num_cat > 0, jitter,
                       options_.num_threads, &parts)) {
      // w = M^-1 B D^-1 y_std — the O(m) prediction vector — and the
      // FITC log marginal likelihood from the same intermediates.
      std::vector<double> g;
      lml_ = FitcLmlFromParts(parts, ys_std_, n_, m_, &g);
      lu_ = std::move(parts.lu);
      b_ = std::move(parts.b);
      fitc_inv_ = std::move(parts.d_inv);
      lm_ = std::move(parts.lm);
      w_.assign(m_, 0.0);
      TriangularSolveLowerTransposed(lm_, g.data(), w_.data());
      params_ = params;
      return Status::OK();
    }
    jitter *= 10.0;
  }
  return Status::Internal("sparse GP fit failed: inducing block never factored");
}

Status SparseGaussianProcess::Refit() {
  if (n_ == 0) {
    return Status::InvalidArgument("SparseGP::Refit requires observations");
  }
  // The sparse model refits per suggestion (the batch-aware modes keep
  // the exact model), so unlike GaussianProcess there is no
  // AdvanceFitSchedule and no owed-boundary bookkeeping here.
  bool reopt = (fit_count_ % std::max(1, options_.reopt_interval)) == 0 ||
               !fitted_;
  ++fit_count_;

  // No new observations and no hyperparameter refresh due: the cached
  // predictor is already current (mirrors the exact GP's O(1) path —
  // e.g. several suggestions between evaluations).
  if (!reopt && fitted_ && fitted_n_ == n_) return Status::OK();

  y_mean_ = Mean(ys_);
  y_std_ = std::max(Stddev(ys_), 1e-9);
  ys_std_.resize(n_);
  for (int i = 0; i < n_; ++i) ys_std_[i] = (ys_[i] - y_mean_) / y_std_;

  SelectInducing();
  BuildCrossGeometry();

  KernelParams best = params_;
  if (reopt) {
    // Same candidate stream as the exact GP (shared priors), scored
    // in parallel: the selected optimum is independent of the
    // executor count.
    std::vector<KernelParams> candidates =
        DrawKernelRestarts(options_, seed_, fit_count_);
    int restarts = static_cast<int>(candidates.size());
    std::vector<double> lmls(restarts, 0.0);
    ThreadPool::Global().ParallelFor(
        restarts, [&](int r) { lmls[r] = EvaluateFitcLml(candidates[r]); },
        options_.num_threads);
    double best_lml = -std::numeric_limits<double>::infinity();
    for (int r = 0; r < restarts; ++r) {
      if (lmls[r] > best_lml) {
        best_lml = lmls[r];
        best = candidates[r];
      }
    }
    if (!std::isfinite(best_lml)) best = KernelParams{};
  }

  Status st = FactorPredictor(best);
  if (!st.ok()) {
    fitted_ = false;
    lu_ = Matrix();
    lm_ = Matrix();
    return st;
  }
  fitted_ = true;
  fitted_n_ = n_;
  return Status::OK();
}

Status SparseGaussianProcess::Fit(const std::vector<std::vector<double>>& xs,
                                  const std::vector<double>& ys) {
  if (xs.empty() || xs.size() != ys.size()) {
    return Status::InvalidArgument(
        "SparseGP::Fit requires matched non-empty data");
  }
  Reset();
  for (size_t i = 0; i < xs.size(); ++i) AddObservation(xs[i], ys[i]);
  return Refit();
}

void SparseGaussianProcess::KStarInducing(const BoundKernel& kernel,
                                          const double* cont, const double* cat,
                                          double* row, double* scratch) const {
  for (int u = 0; u < m_; ++u) scratch[u] = 0.0;
  for (int d = 0; d < geometry_.num_cont; ++d) {
    double cd = cont[d];
    const double* __restrict__ td = ind_cont_t_.Row(d);
    double* __restrict__ sq = scratch;
    for (int u = 0; u < m_; ++u) {
      double diff = cd - td[u];
      sq[u] += diff * diff;
    }
  }
  for (int u = 0; u < m_; ++u) {
    row[u] = kernel.MaternFromS0(std::sqrt(5.0 * scratch[u]));
  }
  if (geometry_.num_cat > 0) {
    for (int u = 0; u < m_; ++u) scratch[u] = 0.0;
    for (int d = 0; d < geometry_.num_cat; ++d) {
      double cd = cat[d];
      const double* __restrict__ td = ind_cat_t_.Row(d);
      double* __restrict__ mm = scratch;
      for (int u = 0; u < m_; ++u) mm[u] += cd != td[u] ? 1.0 : 0.0;
    }
    for (int u = 0; u < m_; ++u) row[u] *= kernel.HammingFactor(scratch[u]);
  }
}

void SparseGaussianProcess::Predict(const std::vector<double>& x, double* mean,
                                    double* variance) const {
  // One-element batch: like the exact GP, the scalar entry point runs
  // the blockwise path so both agree bit-for-bit by construction.
  std::vector<double> means, variances;
  PredictBatch({x}, &means, &variances);
  *mean = means[0];
  *variance = variances[0];
}

void SparseGaussianProcess::PredictBatch(
    const std::vector<std::vector<double>>& xs, std::vector<double>* means,
    std::vector<double>* variances) const {
  int count = static_cast<int>(xs.size());
  means->assign(count, 0.0);
  variances->assign(count, 0.0);
  if (count == 0) return;
  if (!fitted_ || n_ == 0) {
    double prior_var =
        (params_.signal_variance + params_.noise_variance) * y_std_ * y_std_;
    for (int c = 0; c < count; ++c) {
      (*means)[c] = y_mean_;
      (*variances)[c] = prior_var;
    }
    return;
  }
  BoundKernel kernel(geometry_, params_);
  double k_xx = kernel.FromDistance(0.0, 0.0) + params_.noise_variance;
  double var_scale = y_std_ * y_std_;
  constexpr int kBlock = 128;
  int num_blocks = (count + kBlock - 1) / kBlock;
  ThreadPool::Global().ParallelFor(
      num_blocks,
      [&](int blk) {
        int lo = blk * kBlock;
        int hi = std::min(count, lo + kBlock);
        int bm = hi - lo;
        // k* rows candidate-major, then transposed to column-per-
        // candidate for the multi-solves — the same SoA pass the exact
        // PredictBatch runs, at m columns instead of n.
        Matrix k_star(bm, m_);
        std::vector<double> cont(geometry_.num_cont);
        std::vector<double> cat(geometry_.num_cat);
        std::vector<double> scratch(m_);
        for (int c = 0; c < bm; ++c) {
          SplitPoint(geometry_, xs[lo + c].data(), cont.data(), cat.data());
          KStarInducing(kernel, cont.data(), cat.data(), k_star.Row(c),
                        scratch.data());
        }
        // Per candidate: a = L_u^-1 k*, c = L_m^-1 a. Mean = a^T w;
        // variance is the FITC form k** - a^T a + c^T c (the prior
        // term minus what the inducing set explains, plus the
        // posterior uncertainty of the inducing values themselves),
        // plus the noise floor to match the exact GP's convention.
        Matrix a(m_, bm);
        for (int u = 0; u < m_; ++u) {
          double* a_row = a.Row(u);
          for (int c = 0; c < bm; ++c) a_row[c] = k_star.at(c, u);
        }
        TriangularSolveLowerMulti(lu_, &a);
        std::vector<double> mu(bm, 0.0);
        std::vector<double> sum_a(bm, 0.0);
        for (int u = 0; u < m_; ++u) {
          const double* a_row = a.Row(u);
          double w_u = w_[u];
          for (int c = 0; c < bm; ++c) {
            mu[c] += a_row[c] * w_u;
            sum_a[c] += a_row[c] * a_row[c];
          }
        }
        Matrix cmat = a;
        TriangularSolveLowerMulti(lm_, &cmat);
        std::vector<double> sum_c(bm, 0.0);
        for (int u = 0; u < m_; ++u) {
          const double* c_row = cmat.Row(u);
          for (int c = 0; c < bm; ++c) sum_c[c] += c_row[c] * c_row[c];
        }
        for (int c = 0; c < bm; ++c) {
          (*means)[lo + c] = mu[c] * y_std_ + y_mean_;
          double var_std = std::max(k_xx - sum_a[c] + sum_c[c], 1e-12);
          (*variances)[lo + c] = var_std * var_scale;
        }
      },
      options_.num_threads);
}

}  // namespace llamatune
