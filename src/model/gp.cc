#include "src/model/gp.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/math_util.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"

namespace llamatune {

namespace {
constexpr double kPi = 3.14159265358979323846;
}  // namespace

// ---------------------------------------------------------------------------
// Legacy vector<vector> helpers. Kept as the reference implementation
// for tests and for the pre-PR path replicated in bench/bm_hotpath.cc;
// the GP itself runs on the flat-matrix routines in src/common/matrix.
// ---------------------------------------------------------------------------

Status CholeskyFactor(std::vector<std::vector<double>> a,
                      std::vector<std::vector<double>>* l) {
  int n = static_cast<int>(a.size());
  for (int j = 0; j < n; ++j) {
    double diag = a[j][j];
    for (int k = 0; k < j; ++k) diag -= a[j][k] * a[j][k];
    if (diag <= 0.0 || !std::isfinite(diag)) {
      return Status::Internal("Cholesky: matrix not positive definite");
    }
    a[j][j] = std::sqrt(diag);
    for (int i = j + 1; i < n; ++i) {
      double acc = a[i][j];
      for (int k = 0; k < j; ++k) acc -= a[i][k] * a[j][k];
      a[i][j] = acc / a[j][j];
    }
    for (int i = 0; i < j; ++i) a[i][j] = 0.0;  // zero upper triangle
  }
  *l = std::move(a);
  return Status::OK();
}

std::vector<double> ForwardSolve(const std::vector<std::vector<double>>& l,
                                 const std::vector<double>& b) {
  int n = static_cast<int>(l.size());
  std::vector<double> z(n, 0.0);
  for (int i = 0; i < n; ++i) {
    double acc = b[i];
    for (int k = 0; k < i; ++k) acc -= l[i][k] * z[k];
    z[i] = acc / l[i][i];
  }
  return z;
}

std::vector<double> BackwardSolve(const std::vector<std::vector<double>>& l,
                                  const std::vector<double>& b) {
  int n = static_cast<int>(l.size());
  std::vector<double> z(n, 0.0);
  for (int i = n - 1; i >= 0; --i) {
    double acc = b[i];
    for (int k = i + 1; k < n; ++k) acc -= l[k][i] * z[k];
    z[i] = acc / l[i][i];
  }
  return z;
}

std::vector<KernelParams> DrawKernelRestarts(const GpOptions& options,
                                             uint64_t seed, int fit_count) {
  Rng rng(HashCombine(seed, static_cast<uint64_t>(fit_count)));
  std::vector<KernelParams> candidates(options.hyperparameter_restarts);
  for (KernelParams& cand : candidates) {
    cand.signal_variance = std::exp(rng.Uniform(std::log(0.25), std::log(4.0)));
    cand.lengthscale = std::exp(rng.Uniform(std::log(0.05), std::log(3.0)));
    cand.hamming_weight = std::exp(rng.Uniform(std::log(0.1), std::log(5.0)));
    cand.noise_variance = std::exp(rng.Uniform(std::log(1e-6), std::log(1e-1)));
    cand.noise_variance =
        std::max(cand.noise_variance, options.min_noise_variance);
  }
  return candidates;
}

// ---------------------------------------------------------------------------
// GaussianProcess
// ---------------------------------------------------------------------------

GaussianProcess::GaussianProcess(const SearchSpace& space, GpOptions options,
                                 uint64_t seed)
    : space_(space),
      options_(options),
      geometry_(space_),
      seed_(seed),
      train_cont_(0, geometry_.num_cont),
      train_cat_(0, geometry_.num_cat) {}

void GaussianProcess::Reset() {
  n_ = 0;
  train_cont_ = Matrix(0, geometry_.num_cont);
  train_cat_ = Matrix(0, geometry_.num_cat);
  train_cont_t_ = Matrix();
  train_cat_t_ = Matrix();
  ys_.clear();
  ys_std_.clear();
  s0_ = Matrix();
  mismatch_ = Matrix();
  geometry_rows_ = 0;
  gram_ = Matrix();
  chol_ = Matrix();
  z_.clear();
  alpha_.clear();
  params_ = KernelParams{};
  fit_count_ = 0;
  reopt_owed_ = false;
  y_mean_ = 0.0;
  y_std_ = 1.0;
  lml_ = 0.0;
  fitted_ = false;
}

void GaussianProcess::AddObservation(const std::vector<double>& x, double y) {
  std::vector<double> cont(geometry_.num_cont);
  std::vector<double> cat(geometry_.num_cat);
  SplitPoint(geometry_, x.data(), cont.data(), cat.data());
  train_cont_.AppendRow(cont.data());
  train_cat_.AppendRow(cat.data());
  ys_.push_back(y);
  ++n_;
}

void GaussianProcess::ExtendGeometry() {
  if (geometry_rows_ == n_) return;
  bool track_mismatch = geometry_.num_cat > 0;
  // Dim-major copies of the new training points for prediction sweeps.
  train_cont_t_.ResizePreserve(geometry_.num_cont, n_, 0.0);
  train_cat_t_.ResizePreserve(geometry_.num_cat, n_, 0.0);
  for (int i = geometry_rows_; i < n_; ++i) {
    for (int d = 0; d < geometry_.num_cont; ++d) {
      train_cont_t_.at(d, i) = train_cont_.at(i, d);
    }
    for (int d = 0; d < geometry_.num_cat; ++d) {
      train_cat_t_.at(d, i) = train_cat_.at(i, d);
    }
  }
  s0_.ResizePreserve(n_, n_, 0.0);
  if (track_mismatch) mismatch_.ResizePreserve(n_, n_, 0.0);
  // Only the lower triangle is maintained — every consumer (Gram
  // builds, factor extensions) reads rows j <= i.
  for (int r = geometry_rows_; r < n_; ++r) {
    const double* cont_r = train_cont_.Row(r);
    const double* cat_r = train_cat_.Row(r);
    double* s0_row = s0_.Row(r);
    for (int j = 0; j <= r; ++j) {
      double sq = SquaredDistance(cont_r, train_cont_.Row(j),
                                  geometry_.num_cont);
      s0_row[j] = std::sqrt(5.0 * sq);
    }
    if (track_mismatch) {
      double* mm_row = mismatch_.Row(r);
      for (int j = 0; j <= r; ++j) {
        mm_row[j] =
            CountMismatches(cat_r, train_cat_.Row(j), geometry_.num_cat);
      }
    }
  }
  geometry_rows_ = n_;
}

void GaussianProcess::BuildGram(const BoundKernel& kernel,
                                Matrix* out) const {
  bool track_mismatch = geometry_.num_cat > 0;
  out->ResizePreserve(n_, n_, 0.0);
  // Lower triangle only — the factorization never reads above the
  // diagonal (and zeroes it on output). Two passes keep the Matérn
  // sweep branch- and gather-free; element-wise arithmetic matches
  // FromPrecomputed.
  for (int i = 0; i < n_; ++i) {
    double* out_row = out->Row(i);
    const double* s0_row = s0_.Row(i);
    for (int j = 0; j <= i; ++j) out_row[j] = kernel.MaternFromS0(s0_row[j]);
    if (track_mismatch) {
      const double* mm_row = mismatch_.Row(i);
      for (int j = 0; j <= i; ++j) {
        out_row[j] *= kernel.HammingFactor(mm_row[j]);
      }
    }
  }
}

Status GaussianProcess::FactorFull(const KernelParams& params) {
  // A rebuilt factor (possibly with an escalated nugget) invalidates
  // the cached forward-solve prefix.
  z_.clear();
  BuildGram(BoundKernel(geometry_, params), &gram_);
  KernelParams p = params;
  // Jitter escalation: grow the nugget until the Gram matrix factors.
  // The Gram matrix itself is built once — each retry only re-copies it
  // and bumps the diagonal (the nugget is the only thing that changed).
  for (int attempt = 0; attempt < 6; ++attempt) {
    chol_ = gram_;
    for (int i = 0; i < n_; ++i) chol_.at(i, i) += p.noise_variance;
    if (CholeskyFactorInPlace(&chol_).ok()) {
      params_ = p;
      return Status::OK();
    }
    p.noise_variance = std::max(p.noise_variance, 1e-8) * 10.0;
  }
  return Status::Internal("GP fit failed: Gram matrix never factored");
}

Status GaussianProcess::ExtendFactor(int old_n) {
  bool track_mismatch = geometry_.num_cat > 0;
  BoundKernel kernel(geometry_, params_);
  std::vector<double> krow;
  for (int r = old_n; r < n_; ++r) {
    krow.resize(r + 1);
    const double* s0_row = s0_.Row(r);
    for (int j = 0; j <= r; ++j) krow[j] = kernel.MaternFromS0(s0_row[j]);
    if (track_mismatch) {
      const double* mm_row = mismatch_.Row(r);
      for (int j = 0; j <= r; ++j) krow[j] *= kernel.HammingFactor(mm_row[j]);
    }
    krow[r] += params_.noise_variance;
    Status st = CholeskyExtend(&chol_, krow.data());
    if (!st.ok()) {
      // Lost positive definiteness (e.g. a near-duplicate point):
      // rebuild from scratch with jitter escalation.
      return FactorFull(params_);
    }
  }
  return Status::OK();
}

void GaussianProcess::ComputeAlphaAndLml() {
  // Resume the cached forward-solve prefix: entry i of z = L^-1 y_std
  // depends only on rows [0, i] of L and y_std, both of which a
  // CholeskyExtend leaves untouched, so continuing the substitution
  // from z_.size() is bit-for-bit a full TriangularSolveLower. After a
  // FactorFull the prefix is empty and this IS the full solve.
  int start = static_cast<int>(z_.size());
  z_.resize(n_, 0.0);
  for (int i = start; i < n_; ++i) {
    const double* row_i = chol_.Row(i);
    double acc = ys_std_[i];
    for (int k = 0; k < i; ++k) acc -= row_i[k] * z_[k];
    z_[i] = acc / row_i[i];
  }
  alpha_.assign(n_, 0.0);
  TriangularSolveLowerTransposed(chol_, z_.data(), alpha_.data());
  // lml = -1/2 y^T alpha - sum log L_ii - n/2 log(2 pi)
  double lml = 0.0;
  for (int i = 0; i < n_; ++i) lml -= 0.5 * ys_std_[i] * alpha_[i];
  for (int i = 0; i < n_; ++i) lml -= std::log(chol_.at(i, i));
  lml -= 0.5 * static_cast<double>(n_) * std::log(2.0 * kPi);
  lml_ = lml;
}

double GaussianProcess::EvaluateLml(const KernelParams& params) const {
  Matrix l;
  BuildGram(BoundKernel(geometry_, params), &l);
  for (int i = 0; i < n_; ++i) l.at(i, i) += params.noise_variance;
  if (!CholeskyFactorInPlace(&l).ok()) {
    return -std::numeric_limits<double>::infinity();
  }
  std::vector<double> z(n_, 0.0);
  TriangularSolveLower(l, ys_std_.data(), z.data());
  std::vector<double> alpha(n_, 0.0);
  TriangularSolveLowerTransposed(l, z.data(), alpha.data());
  double lml = 0.0;
  for (int i = 0; i < n_; ++i) lml -= 0.5 * ys_std_[i] * alpha[i];
  for (int i = 0; i < n_; ++i) lml -= std::log(l.at(i, i));
  lml -= 0.5 * static_cast<double>(n_) * std::log(2.0 * kPi);
  return lml;
}

void GaussianProcess::AdvanceFitSchedule(int steps) {
  if (steps <= 0) return;
  int interval = std::max(1, options_.reopt_interval);
  // Refit() tests fit_count_ % interval before incrementing, so the
  // values skipped here — [fit_count_, fit_count_ + steps - 1] minus
  // the one the next Refit() will test — may contain a boundary.
  // Conservatively flag any boundary in the advanced-over range that
  // the next call's own test would miss.
  int lo = fit_count_;
  int hi = fit_count_ + steps - 1;
  if ((hi / interval) * interval >= lo) reopt_owed_ = true;
  fit_count_ += steps;
  if (fit_count_ % interval == 0) reopt_owed_ = false;  // next test catches it
}

Status GaussianProcess::Refit() {
  if (n_ == 0) {
    return Status::InvalidArgument("GP::Refit requires observations");
  }
  bool reopt = reopt_owed_ ||
               (fit_count_ % std::max(1, options_.reopt_interval)) == 0 ||
               !fitted_;
  reopt_owed_ = false;
  ++fit_count_;

  // Target standardization refreshes at re-optimization boundaries and
  // stays frozen between them (see class comment): the frozen prefix
  // of ys_std_ is what lets the cached forward-solve vector z_ survive
  // factor extensions. New observations since the last boundary are
  // standardized with the frozen (mean, stddev).
  if (reopt) {
    y_mean_ = Mean(ys_);
    y_std_ = std::max(Stddev(ys_), 1e-9);
    ys_std_.resize(n_);
    for (int i = 0; i < n_; ++i) ys_std_[i] = (ys_[i] - y_mean_) / y_std_;
  } else {
    for (int i = static_cast<int>(ys_std_.size()); i < n_; ++i) {
      ys_std_.push_back((ys_[i] - y_mean_) / y_std_);
    }
  }

  ExtendGeometry();

  KernelParams best = params_;
  if (reopt) {
    // Candidates are drawn sequentially (a fixed RNG stream), then
    // scored in parallel: the selected optimum is independent of the
    // executor count.
    std::vector<KernelParams> candidates =
        DrawKernelRestarts(options_, seed_, fit_count_);
    int restarts = static_cast<int>(candidates.size());
    std::vector<double> lmls(restarts, 0.0);
    ThreadPool::Global().ParallelFor(
        restarts, [&](int r) { lmls[r] = EvaluateLml(candidates[r]); },
        options_.num_threads);
    double best_lml = -std::numeric_limits<double>::infinity();
    for (int r = 0; r < restarts; ++r) {
      if (lmls[r] > best_lml) {
        best_lml = lmls[r];
        best = candidates[r];
      }
    }
    if (!std::isfinite(best_lml)) {
      best = KernelParams{};  // fall back to defaults
    }
  }

  int factored = fitted_ ? chol_.rows() : 0;
  Status st;
  if (reopt || factored == 0) {
    st = FactorFull(best);
  } else if (factored == n_) {
    // No new observations since the cached factor (e.g. several
    // suggestions between evaluations): with the standardization
    // frozen between boundaries, the factor, z prefix, alpha, and lml
    // are all still current — nothing to do.
    if (static_cast<int>(z_.size()) == n_ &&
        static_cast<int>(alpha_.size()) == n_) {
      return Status::OK();
    }
    st = Status::OK();
  } else if (options_.incremental) {
    st = ExtendFactor(factored);
  } else {
    st = FactorFull(params_);
  }
  if (!st.ok()) {
    // A failed factorization leaves chol_ partially overwritten; drop
    // the fit state so the next Refit rebuilds from scratch instead of
    // reusing (or rank-extending) the corrupted factor.
    fitted_ = false;
    chol_ = Matrix();
    z_.clear();
    return st;
  }
  ComputeAlphaAndLml();
  fitted_ = true;
  return Status::OK();
}

Status GaussianProcess::Condition(const std::vector<double>& x, double y) {
  if (!fitted_ || chol_.rows() != n_) {
    return Status::FailedPrecondition(
        "GP::Condition requires a fitted model with a current factor");
  }
  int old_n = n_;
  AddObservation(x, y);
  ExtendGeometry();
  // The standardization stays frozen at the last Refit(): fantasies
  // are drawn from the fitted posterior, whose scale they must share.
  ys_std_.push_back((y - y_mean_) / y_std_);
  Status st = ExtendFactor(old_n);
  if (!st.ok()) {
    // ExtendFactor already fell back to a full refactorization; a
    // failure here means even jitter escalation could not recover.
    fitted_ = false;
    chol_ = Matrix();
    z_.clear();
    return st;
  }
  ComputeAlphaAndLml();
  return Status::OK();
}

void GaussianProcess::KStarRow(const BoundKernel& kernel, const double* cont,
                               const double* cat, int m, double* row,
                               double* sq_scratch) const {
  // Squared distances via dim-major passes: each pass streams one
  // contiguous coordinate row and vectorizes across training points.
  for (int i = 0; i < m; ++i) sq_scratch[i] = 0.0;
  for (int d = 0; d < geometry_.num_cont; ++d) {
    double cd = cont[d];
    const double* __restrict__ td = train_cont_t_.Row(d);
    double* __restrict__ sq = sq_scratch;
    for (int i = 0; i < m; ++i) {
      double diff = cd - td[i];
      sq[i] += diff * diff;
    }
  }
  for (int i = 0; i < m; ++i) {
    row[i] = kernel.MaternFromS0(std::sqrt(5.0 * sq_scratch[i]));
  }
  if (geometry_.num_cat > 0) {
    for (int i = 0; i < m; ++i) sq_scratch[i] = 0.0;
    for (int d = 0; d < geometry_.num_cat; ++d) {
      double cd = cat[d];
      const double* __restrict__ td = train_cat_t_.Row(d);
      double* __restrict__ mm = sq_scratch;
      for (int i = 0; i < m; ++i) mm[i] += cd != td[i] ? 1.0 : 0.0;
    }
    for (int i = 0; i < m; ++i) {
      row[i] *= kernel.HammingFactor(sq_scratch[i]);
    }
  }
}

Status GaussianProcess::Fit(const std::vector<std::vector<double>>& xs,
                            const std::vector<double>& ys) {
  if (xs.empty() || xs.size() != ys.size()) {
    return Status::InvalidArgument("GP::Fit requires matched non-empty data");
  }
  Reset();
  for (size_t i = 0; i < xs.size(); ++i) AddObservation(xs[i], ys[i]);
  return Refit();
}

void GaussianProcess::Predict(const std::vector<double>& x, double* mean,
                              double* variance) const {
  // One-element batch: Predict() and PredictBatch() share every
  // instruction of the scoring path (k_star build, triangular solves,
  // reductions), so their results are bit-for-bit identical by
  // construction — there is no separate scalar path to drift.
  std::vector<double> means, variances;
  PredictBatch({x}, &means, &variances);
  *mean = means[0];
  *variance = variances[0];
}

void GaussianProcess::PredictBatch(const std::vector<std::vector<double>>& xs,
                                   std::vector<double>* means,
                                   std::vector<double>* variances) const {
  int m = static_cast<int>(xs.size());
  means->assign(m, 0.0);
  variances->assign(m, 0.0);
  if (m == 0) return;
  if (!fitted_ || n_ == 0) {
    // Prior-only batch: fill the same constants Predict() returns for
    // an unfitted model in one contiguous pass (no per-candidate
    // scalar fallback — every entry is bit-for-bit Predict()).
    double prior_var =
        (params_.signal_variance + params_.noise_variance) * y_std_ * y_std_;
    for (int c = 0; c < m; ++c) {
      (*means)[c] = y_mean_;
      (*variances)[c] = prior_var;
    }
    return;
  }
  // A fitted model always takes the blockwise path — observations
  // appended after the last Refit() (pending mid-round points) simply
  // cap the solve at the factored prefix, exactly as Predict() does.

  BoundKernel kernel(geometry_, params_);
  double k_xx = kernel.FromDistance(0.0, 0.0) + params_.noise_variance;
  double var_scale = y_std_ * y_std_;
  int n = chol_.rows();  // fitted prefix
  constexpr int kBlock = 128;
  int num_blocks = (m + kBlock - 1) / kBlock;
  ThreadPool::Global().ParallelFor(
      num_blocks,
      [&](int b) {
        int lo = b * kBlock;
        int hi = std::min(m, lo + kBlock);
        int bm = hi - lo;
        // k_star rows, candidate-major for the kernel sweep.
        Matrix k_star(bm, n);
        std::vector<double> cont(geometry_.num_cont);
        std::vector<double> cat(geometry_.num_cat);
        std::vector<double> scratch(n);
        for (int c = 0; c < bm; ++c) {
          SplitPoint(geometry_, xs[lo + c].data(), cont.data(), cat.data());
          double* row = k_star.Row(c);
          KStarRow(kernel, cont.data(), cat.data(), n, row, scratch.data());
          double mu_std = 0.0;
          for (int i = 0; i < n; ++i) mu_std += row[i] * alpha_[i];
          (*means)[lo + c] = mu_std * y_std_ + y_mean_;
        }
        // Solve all k_star columns against the cached factor in one
        // sweep: transpose to column-per-candidate and multi-solve.
        Matrix v(n, bm);
        for (int i = 0; i < n; ++i) {
          double* v_row = v.Row(i);
          for (int c = 0; c < bm; ++c) v_row[c] = k_star.at(c, i);
        }
        TriangularSolveLowerMulti(chol_, &v);
        std::vector<double> sum_sq(bm, 0.0);
        for (int i = 0; i < n; ++i) {
          const double* v_row = v.Row(i);
          for (int c = 0; c < bm; ++c) sum_sq[c] += v_row[c] * v_row[c];
        }
        for (int c = 0; c < bm; ++c) {
          double var_std = std::max(k_xx - sum_sq[c], 1e-12);
          (*variances)[lo + c] = var_std * var_scale;
        }
      },
      options_.num_threads);
}

}  // namespace llamatune
