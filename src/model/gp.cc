#include "src/model/gp.h"

#include <cmath>
#include <limits>

#include "src/common/math_util.h"
#include "src/common/rng.h"

namespace llamatune {

namespace {
constexpr double kPi = 3.14159265358979323846;
}  // namespace

Status CholeskyFactor(std::vector<std::vector<double>> a,
                      std::vector<std::vector<double>>* l) {
  int n = static_cast<int>(a.size());
  for (int j = 0; j < n; ++j) {
    double diag = a[j][j];
    for (int k = 0; k < j; ++k) diag -= a[j][k] * a[j][k];
    if (diag <= 0.0 || !std::isfinite(diag)) {
      return Status::Internal("Cholesky: matrix not positive definite");
    }
    a[j][j] = std::sqrt(diag);
    for (int i = j + 1; i < n; ++i) {
      double acc = a[i][j];
      for (int k = 0; k < j; ++k) acc -= a[i][k] * a[j][k];
      a[i][j] = acc / a[j][j];
    }
    for (int i = 0; i < j; ++i) a[i][j] = 0.0;  // zero upper triangle
  }
  *l = std::move(a);
  return Status::OK();
}

std::vector<double> ForwardSolve(const std::vector<std::vector<double>>& l,
                                 const std::vector<double>& b) {
  int n = static_cast<int>(l.size());
  std::vector<double> z(n, 0.0);
  for (int i = 0; i < n; ++i) {
    double acc = b[i];
    for (int k = 0; k < i; ++k) acc -= l[i][k] * z[k];
    z[i] = acc / l[i][i];
  }
  return z;
}

std::vector<double> BackwardSolve(const std::vector<std::vector<double>>& l,
                                  const std::vector<double>& b) {
  int n = static_cast<int>(l.size());
  std::vector<double> z(n, 0.0);
  for (int i = n - 1; i >= 0; --i) {
    double acc = b[i];
    for (int k = i + 1; k < n; ++k) acc -= l[k][i] * z[k];
    z[i] = acc / l[i][i];
  }
  return z;
}

GaussianProcess::GaussianProcess(const SearchSpace& space, GpOptions options,
                                 uint64_t seed)
    : space_(space), options_(options), seed_(seed) {}

Status GaussianProcess::FactorAndCache(
    const KernelParams& params, const std::vector<std::vector<double>>& xs,
    const std::vector<double>& ys_std) {
  KernelParams p = params;
  // Jitter escalation: grow the nugget until the Gram matrix factors.
  for (int attempt = 0; attempt < 6; ++attempt) {
    auto gram = KernelMatrix(space_, p, xs);
    std::vector<std::vector<double>> l;
    Status st = CholeskyFactor(std::move(gram), &l);
    if (st.ok()) {
      chol_ = std::move(l);
      std::vector<double> z = ForwardSolve(chol_, ys_std);
      alpha_ = BackwardSolve(chol_, z);
      params_ = p;
      // lml = -1/2 y^T alpha - sum log L_ii - n/2 log(2 pi)
      double lml = 0.0;
      for (size_t i = 0; i < ys_std.size(); ++i) lml -= 0.5 * ys_std[i] * alpha_[i];
      for (size_t i = 0; i < chol_.size(); ++i) lml -= std::log(chol_[i][i]);
      lml -= 0.5 * static_cast<double>(ys_std.size()) * std::log(2.0 * kPi);
      lml_ = lml;
      return Status::OK();
    }
    p.noise_variance = std::max(p.noise_variance, 1e-8) * 10.0;
  }
  return Status::Internal("GP fit failed: Gram matrix never factored");
}

double GaussianProcess::EvaluateLml(const KernelParams& params,
                                    const std::vector<std::vector<double>>& xs,
                                    const std::vector<double>& ys_std) const {
  auto gram = KernelMatrix(space_, params, xs);
  std::vector<std::vector<double>> l;
  Status st = CholeskyFactor(std::move(gram), &l);
  if (!st.ok()) return -std::numeric_limits<double>::infinity();
  std::vector<double> z = ForwardSolve(l, ys_std);
  std::vector<double> alpha = BackwardSolve(l, z);
  double lml = 0.0;
  for (size_t i = 0; i < ys_std.size(); ++i) lml -= 0.5 * ys_std[i] * alpha[i];
  for (size_t i = 0; i < l.size(); ++i) lml -= std::log(l[i][i]);
  lml -= 0.5 * static_cast<double>(ys_std.size()) * std::log(2.0 * kPi);
  return lml;
}

Status GaussianProcess::Fit(const std::vector<std::vector<double>>& xs,
                            const std::vector<double>& ys) {
  if (xs.empty() || xs.size() != ys.size()) {
    return Status::InvalidArgument("GP::Fit requires matched non-empty data");
  }
  train_x_ = xs;
  y_mean_ = Mean(ys);
  y_std_ = std::max(Stddev(ys), 1e-9);
  std::vector<double> ys_std(ys.size());
  for (size_t i = 0; i < ys.size(); ++i) ys_std[i] = (ys[i] - y_mean_) / y_std_;

  bool reopt = (fit_count_ % std::max(1, options_.reopt_interval)) == 0 ||
               !fitted_;
  ++fit_count_;

  KernelParams best = params_;
  if (reopt) {
    Rng rng(HashCombine(seed_, static_cast<uint64_t>(fit_count_)));
    double best_lml = -std::numeric_limits<double>::infinity();
    for (int r = 0; r < options_.hyperparameter_restarts; ++r) {
      KernelParams cand;
      cand.signal_variance = std::exp(rng.Uniform(std::log(0.25), std::log(4.0)));
      cand.lengthscale = std::exp(rng.Uniform(std::log(0.05), std::log(3.0)));
      cand.hamming_weight = std::exp(rng.Uniform(std::log(0.1), std::log(5.0)));
      cand.noise_variance =
          std::exp(rng.Uniform(std::log(1e-6), std::log(1e-1)));
      cand.noise_variance =
          std::max(cand.noise_variance, options_.min_noise_variance);
      double lml = EvaluateLml(cand, train_x_, ys_std);
      if (lml > best_lml) {
        best_lml = lml;
        best = cand;
      }
    }
    if (!std::isfinite(best_lml)) {
      best = KernelParams{};  // fall back to defaults
    }
  }

  Status st = FactorAndCache(best, train_x_, ys_std);
  if (!st.ok()) return st;
  fitted_ = true;
  return Status::OK();
}

void GaussianProcess::Predict(const std::vector<double>& x, double* mean,
                              double* variance) const {
  int n = static_cast<int>(train_x_.size());
  std::vector<double> k_star(n);
  for (int i = 0; i < n; ++i) {
    k_star[i] = MixedKernel(space_, params_, x, train_x_[i]);
  }
  double mu_std = Dot(k_star, alpha_);
  std::vector<double> v = ForwardSolve(chol_, k_star);
  double k_xx = MixedKernel(space_, params_, x, x) + params_.noise_variance;
  double var_std = k_xx - Dot(v, v);
  var_std = std::max(var_std, 1e-12);
  *mean = mu_std * y_std_ + y_mean_;
  *variance = var_std * y_std_ * y_std_;
}

}  // namespace llamatune
