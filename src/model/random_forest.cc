#include "src/model/random_forest.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/math_util.h"

namespace llamatune {

namespace {

struct Node {
  bool is_leaf = true;
  // Split definition.
  int feature = -1;
  double threshold = 0.0;     // continuous: x[f] <= threshold goes left
  double category = -1.0;     // categorical: x[f] == category goes left
  bool categorical_split = false;
  int left = -1;
  int right = -1;
  // Leaf statistics.
  double mean = 0.0;
  double variance = 0.0;
};

}  // namespace

struct RandomForest::Tree {
  std::vector<Node> nodes;

  const Node& Descend(const std::vector<double>& x) const {
    int idx = 0;
    while (!nodes[idx].is_leaf) {
      const Node& node = nodes[idx];
      bool go_left;
      if (node.categorical_split) {
        go_left = x[node.feature] == node.category;
      } else {
        go_left = x[node.feature] <= node.threshold;
      }
      idx = go_left ? node.left : node.right;
    }
    return nodes[idx];
  }
};

namespace {

double SubsetVarianceTimesN(const std::vector<double>& ys,
                            const std::vector<int>& idx) {
  if (idx.size() < 2) return 0.0;
  double sum = 0.0, sum_sq = 0.0;
  for (int i : idx) {
    sum += ys[i];
    sum_sq += ys[i] * ys[i];
  }
  double n = static_cast<double>(idx.size());
  return sum_sq - sum * sum / n;
}

void MakeLeaf(Node* node, const std::vector<double>& ys,
              const std::vector<int>& idx) {
  node->is_leaf = true;
  double sum = 0.0;
  for (int i : idx) sum += ys[i];
  double n = static_cast<double>(idx.size());
  node->mean = idx.empty() ? 0.0 : sum / n;
  double acc = 0.0;
  for (int i : idx) acc += (ys[i] - node->mean) * (ys[i] - node->mean);
  node->variance = idx.size() < 2 ? 0.0 : acc / n;
}

struct SplitChoice {
  bool valid = false;
  int feature = -1;
  bool categorical = false;
  double threshold = 0.0;
  double category = -1.0;
  double score = std::numeric_limits<double>::infinity();
  std::vector<int> left_idx;
  std::vector<int> right_idx;
};

// Evaluates the best of a few random thresholds on one feature
// (extra-trees style randomized split search: fast and a good
// exploration/variance trade-off for surrogate forests).
void TrySplitsOnFeature(const SearchSpace& space, int feature,
                        const std::vector<std::vector<double>>& xs,
                        const std::vector<double>& ys,
                        const std::vector<int>& idx, int min_samples_leaf,
                        Rng* rng, SplitChoice* best) {
  const SearchDim& dim = space.dim(feature);
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (int i : idx) {
    lo = std::min(lo, xs[i][feature]);
    hi = std::max(hi, xs[i][feature]);
  }
  if (!(hi > lo)) return;  // constant feature in this node

  auto consider = [&](bool categorical, double threshold, double category) {
    std::vector<int> left, right;
    left.reserve(idx.size());
    right.reserve(idx.size());
    for (int i : idx) {
      bool go_left = categorical ? xs[i][feature] == category
                                 : xs[i][feature] <= threshold;
      (go_left ? left : right).push_back(i);
    }
    if (static_cast<int>(left.size()) < min_samples_leaf ||
        static_cast<int>(right.size()) < min_samples_leaf) {
      return;
    }
    double score =
        SubsetVarianceTimesN(ys, left) + SubsetVarianceTimesN(ys, right);
    if (score < best->score) {
      best->valid = true;
      best->feature = feature;
      best->categorical = categorical;
      best->threshold = threshold;
      best->category = category;
      best->score = score;
      best->left_idx = std::move(left);
      best->right_idx = std::move(right);
    }
  };

  if (dim.type == SearchDim::Type::kCategorical) {
    // One-vs-rest split on a category present in this node.
    int present = static_cast<int>(rng->UniformInt(0, idx.size() - 1));
    double cat = xs[idx[present]][feature];
    consider(/*categorical=*/true, 0.0, cat);
    // Also try one more random present category for better splits.
    present = static_cast<int>(rng->UniformInt(0, idx.size() - 1));
    double cat2 = xs[idx[present]][feature];
    if (cat2 != cat) consider(true, 0.0, cat2);
  } else {
    static constexpr int kThresholdsPerFeature = 3;
    for (int t = 0; t < kThresholdsPerFeature; ++t) {
      double threshold = rng->Uniform(lo, hi);
      consider(/*categorical=*/false, threshold, -1.0);
    }
  }
}

}  // namespace

RandomForest::RandomForest(const SearchSpace& space,
                           RandomForestOptions options, uint64_t seed)
    : space_(space), options_(options), rng_(seed) {}

RandomForest::~RandomForest() = default;
RandomForest::RandomForest(RandomForest&&) noexcept = default;
RandomForest& RandomForest::operator=(RandomForest&&) noexcept = default;

void RandomForest::Fit(const std::vector<std::vector<double>>& xs,
                       const std::vector<double>& ys) {
  trees_.clear();
  int n = static_cast<int>(xs.size());
  int d = space_.num_dims();
  int features_per_split = std::max(
      1, static_cast<int>(std::ceil(options_.feature_fraction * d)));

  for (int t = 0; t < options_.num_trees; ++t) {
    auto tree = std::make_unique<Tree>();
    std::vector<int> root_idx;
    root_idx.reserve(n);
    if (options_.bootstrap && n > 1) {
      for (int i = 0; i < n; ++i) {
        root_idx.push_back(static_cast<int>(rng_.UniformInt(0, n - 1)));
      }
    } else {
      for (int i = 0; i < n; ++i) root_idx.push_back(i);
    }

    // Iterative tree growth with an explicit work stack.
    struct Work {
      int node;
      std::vector<int> idx;
      int depth;
    };
    tree->nodes.emplace_back();
    std::vector<Work> stack;
    stack.push_back({0, std::move(root_idx), 0});
    while (!stack.empty()) {
      Work work = std::move(stack.back());
      stack.pop_back();
      Node& node = tree->nodes[work.node];
      bool can_split =
          static_cast<int>(work.idx.size()) >= options_.min_samples_split &&
          work.depth < options_.max_depth;
      SplitChoice best;
      if (can_split) {
        std::vector<int> features =
            rng_.SampleWithoutReplacement(d, features_per_split);
        for (int f : features) {
          TrySplitsOnFeature(space_, f, xs, ys, work.idx,
                             options_.min_samples_leaf, &rng_, &best);
        }
      }
      if (!best.valid) {
        MakeLeaf(&node, ys, work.idx);
        continue;
      }
      node.is_leaf = false;
      node.feature = best.feature;
      node.categorical_split = best.categorical;
      node.threshold = best.threshold;
      node.category = best.category;
      int left = static_cast<int>(tree->nodes.size());
      tree->nodes.emplace_back();
      tree->nodes.emplace_back();
      // Note: `node` reference may dangle after emplace_back; re-index.
      tree->nodes[work.node].left = left;
      tree->nodes[work.node].right = left + 1;
      stack.push_back({left, std::move(best.left_idx), work.depth + 1});
      stack.push_back({left + 1, std::move(best.right_idx), work.depth + 1});
    }
    trees_.push_back(std::move(tree));
  }
  fitted_ = !xs.empty();
}

void RandomForest::Predict(const std::vector<double>& x, double* mean,
                           double* variance) const {
  double sum = 0.0, sum_sq = 0.0, within = 0.0;
  int m = static_cast<int>(trees_.size());
  for (const auto& tree : trees_) {
    const Node& leaf = tree->Descend(x);
    sum += leaf.mean;
    sum_sq += leaf.mean * leaf.mean;
    within += leaf.variance;
  }
  double mu = sum / m;
  // Law of total variance: Var[leaf means] + E[leaf variances].
  double between = std::max(0.0, sum_sq / m - mu * mu);
  *mean = mu;
  *variance = between + within / m;
}

double RandomForest::PredictMean(const std::vector<double>& x) const {
  double mean = 0.0, variance = 0.0;
  Predict(x, &mean, &variance);
  return mean;
}

}  // namespace llamatune
