#include "src/model/kernels.h"

#include <cmath>

namespace llamatune {

double Matern52(double r) {
  double s = std::sqrt(5.0) * r;
  return (1.0 + s + s * s / 3.0) * std::exp(-s);
}

double MixedKernel(const SearchSpace& space, const KernelParams& params,
                   const std::vector<double>& a, const std::vector<double>& b) {
  double sq_dist = 0.0;
  int num_cont = 0;
  int num_cat = 0;
  int mismatches = 0;
  for (int i = 0; i < space.num_dims(); ++i) {
    const SearchDim& dim = space.dim(i);
    if (dim.type == SearchDim::Type::kCategorical) {
      ++num_cat;
      if (a[i] != b[i]) ++mismatches;
    } else {
      ++num_cont;
      double span = dim.hi - dim.lo;
      double d = span > 0.0 ? (a[i] - b[i]) / span : 0.0;
      sq_dist += d * d;
    }
  }
  double k = params.signal_variance;
  if (num_cont > 0) {
    double r = std::sqrt(sq_dist) / params.lengthscale;
    k *= Matern52(r);
  }
  if (num_cat > 0) {
    double mismatch_fraction =
        static_cast<double>(mismatches) / static_cast<double>(num_cat);
    k *= std::exp(-params.hamming_weight * mismatch_fraction);
  }
  return k;
}

std::vector<std::vector<double>> KernelMatrix(
    const SearchSpace& space, const KernelParams& params,
    const std::vector<std::vector<double>>& xs) {
  int n = static_cast<int>(xs.size());
  std::vector<std::vector<double>> gram(n, std::vector<double>(n, 0.0));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j <= i; ++j) {
      double k = MixedKernel(space, params, xs[i], xs[j]);
      gram[i][j] = k;
      gram[j][i] = k;
    }
    gram[i][i] += params.noise_variance;
  }
  return gram;
}

}  // namespace llamatune
