#include "src/model/kernels.h"

#include <cmath>

namespace llamatune {

double Matern52(double r) {
  double s = std::sqrt(5.0) * r;
  return (1.0 + s + s * s / 3.0) * std::exp(-s);
}

double MixedKernel(const SearchSpace& space, const KernelParams& params,
                   const std::vector<double>& a, const std::vector<double>& b) {
  double sq_dist = 0.0;
  int num_cont = 0;
  int num_cat = 0;
  int mismatches = 0;
  for (int i = 0; i < space.num_dims(); ++i) {
    const SearchDim& dim = space.dim(i);
    if (dim.type == SearchDim::Type::kCategorical) {
      ++num_cat;
      if (a[i] != b[i]) ++mismatches;
    } else {
      ++num_cont;
      double span = dim.hi - dim.lo;
      double d = span > 0.0 ? (a[i] - b[i]) / span : 0.0;
      sq_dist += d * d;
    }
  }
  double k = params.signal_variance;
  if (num_cont > 0) {
    double r = std::sqrt(sq_dist) / params.lengthscale;
    k *= Matern52(r);
  }
  if (num_cat > 0) {
    double mismatch_fraction =
        static_cast<double>(mismatches) / static_cast<double>(num_cat);
    k *= std::exp(-params.hamming_weight * mismatch_fraction);
  }
  return k;
}

std::vector<std::vector<double>> KernelMatrix(
    const SearchSpace& space, const KernelParams& params,
    const std::vector<std::vector<double>>& xs) {
  int n = static_cast<int>(xs.size());
  std::vector<std::vector<double>> gram(n, std::vector<double>(n, 0.0));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j <= i; ++j) {
      double k = MixedKernel(space, params, xs[i], xs[j]);
      gram[i][j] = k;
      gram[j][i] = k;
    }
    gram[i][i] += params.noise_variance;
  }
  return gram;
}

KernelSpaceCache::KernelSpaceCache(const SearchSpace& space) {
  for (int i = 0; i < space.num_dims(); ++i) {
    const SearchDim& dim = space.dim(i);
    if (dim.type == SearchDim::Type::kCategorical) {
      cat_dims.push_back(i);
    } else {
      cont_dims.push_back(i);
      double span = dim.hi - dim.lo;
      inv_span.push_back(span > 0.0 ? 1.0 / span : 0.0);
    }
  }
  num_cont = static_cast<int>(cont_dims.size());
  num_cat = static_cast<int>(cat_dims.size());
}

void SplitPoint(const KernelSpaceCache& cache, const double* x,
                double* cont_out, double* cat_out) {
  for (int k = 0; k < cache.num_cont; ++k) {
    cont_out[k] = x[cache.cont_dims[k]] * cache.inv_span[k];
  }
  for (int k = 0; k < cache.num_cat; ++k) {
    cat_out[k] = x[cache.cat_dims[k]];
  }
}

double SquaredDistance(const double* a, const double* b, int m) {
  // Four independent accumulators break the add-latency chain (the
  // k_star sweep calls this once per training point per candidate).
  // The split is fixed, so results are deterministic and every caller
  // sees the same accumulation order.
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  int i = 0;
  for (; i + 4 <= m; i += 4) {
    double d0 = a[i] - b[i];
    double d1 = a[i + 1] - b[i + 1];
    double d2 = a[i + 2] - b[i + 2];
    double d3 = a[i + 3] - b[i + 3];
    s0 += d0 * d0;
    s1 += d1 * d1;
    s2 += d2 * d2;
    s3 += d3 * d3;
  }
  double tail = 0.0;
  for (; i < m; ++i) {
    double d = a[i] - b[i];
    tail += d * d;
  }
  return ((s0 + s1) + (s2 + s3)) + tail;
}

double CountMismatches(const double* a, const double* b, int m) {
  double mm = 0.0;
  for (int i = 0; i < m; ++i) {
    if (a[i] != b[i]) mm += 1.0;
  }
  return mm;
}

BoundKernel::BoundKernel(const KernelSpaceCache& cache,
                         const KernelParams& params)
    : signal_variance_(params.signal_variance),
      inv_lengthscale_(1.0 / params.lengthscale),
      has_cont_(cache.num_cont > 0) {
  if (cache.num_cat > 0) {
    hamming_.resize(cache.num_cat + 1);
    for (int mm = 0; mm <= cache.num_cat; ++mm) {
      double mismatch_fraction =
          static_cast<double>(mm) / static_cast<double>(cache.num_cat);
      hamming_[mm] = std::exp(-params.hamming_weight * mismatch_fraction);
    }
  }
}

}  // namespace llamatune
