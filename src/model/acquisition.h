#pragma once

#include <vector>

namespace llamatune {

/// \brief Expected Improvement for maximization.
///
/// EI(x) = (mu - best) Phi(z) + sigma phi(z), z = (mu - best - xi) / sigma,
/// where (mu, sigma^2) is the surrogate's predictive distribution at x
/// and `best` is the incumbent objective value. `xi` is a small
/// exploration margin. With sigma ~ 0 this degenerates to
/// max(0, mu - best - xi).
double ExpectedImprovement(double mean, double variance, double best,
                           double xi = 0.0);

/// \brief Batch helper: EI for parallel (mean, variance) arrays.
std::vector<double> ExpectedImprovementBatch(const std::vector<double>& means,
                                             const std::vector<double>& variances,
                                             double best, double xi = 0.0);

}  // namespace llamatune
