#pragma once

#include <vector>

namespace llamatune {

/// \brief Expected Improvement for maximization.
///
/// EI(x) = (mu - best) Phi(z) + sigma phi(z), z = (mu - best - xi) / sigma,
/// where (mu, sigma^2) is the surrogate's predictive distribution at x
/// and `best` is the incumbent objective value. `xi` is a small
/// exploration margin. With sigma ~ 0 this degenerates to
/// max(0, mu - best - xi).
double ExpectedImprovement(double mean, double variance, double best,
                           double xi = 0.0);

/// \brief Structure-of-arrays EI kernel: writes EI for `count`
/// contiguous (mean, variance) pairs into `out` in one branch-free
/// pass (the sigma ~ 0 degenerate case is a select, not a branch, so
/// the loop body is uniform and auto-vectorizes around the Phi/phi
/// calls). Per-element results are bit-for-bit identical to the scalar
/// ExpectedImprovement. This is the acquisition-scoring hot path: the
/// GP hands back contiguous means/variances from PredictBatch and the
/// whole pool is scored without re-marshalling.
void ExpectedImprovementInto(const double* means, const double* variances,
                             int count, double best, double xi, double* out);

/// \brief Batch helper: EI for parallel (mean, variance) arrays.
std::vector<double> ExpectedImprovementBatch(const std::vector<double>& means,
                                             const std::vector<double>& variances,
                                             double best, double xi = 0.0);

/// \brief First index of the maximum *finite* EI over index-ordered
/// (means, variances) — the shared acquisition reduction for every
/// suggestion path, so the scan order (and thus the pick) never
/// depends on the executor count. Degenerate pool entries (NaN/Inf
/// means or variances, whose EI is non-finite) can never win: NaN
/// comparisons are not trusted to order them out, they are skipped
/// explicitly. Returns 0 for an empty pool or an all-degenerate pool.
int ArgmaxExpectedImprovement(const std::vector<double>& means,
                              const std::vector<double>& variances,
                              double best, double xi = 0.0);

}  // namespace llamatune
