#include "src/model/acquisition.h"

#include <algorithm>
#include <cmath>

#include "src/common/math_util.h"

namespace llamatune {

double ExpectedImprovement(double mean, double variance, double best,
                           double xi) {
  double sigma = std::sqrt(std::max(variance, 0.0));
  double improvement = mean - best - xi;
  if (sigma < 1e-12) return std::max(0.0, improvement);
  double z = improvement / sigma;
  return improvement * NormCdf(z) + sigma * NormPdf(z);
}

std::vector<double> ExpectedImprovementBatch(
    const std::vector<double>& means, const std::vector<double>& variances,
    double best, double xi) {
  std::vector<double> out(means.size());
  for (size_t i = 0; i < means.size(); ++i) {
    out[i] = ExpectedImprovement(means[i], variances[i], best, xi);
  }
  return out;
}

}  // namespace llamatune
