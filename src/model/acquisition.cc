#include "src/model/acquisition.h"

#include <algorithm>
#include <cmath>

#include "src/common/math_util.h"

namespace llamatune {

double ExpectedImprovement(double mean, double variance, double best,
                           double xi) {
  double sigma = std::sqrt(std::max(variance, 0.0));
  double improvement = mean - best - xi;
  if (sigma < 1e-12) return std::max(0.0, improvement);
  double z = improvement / sigma;
  return improvement * NormCdf(z) + sigma * NormPdf(z);
}

void ExpectedImprovementInto(const double* means, const double* variances,
                             int count, double best, double xi, double* out) {
  // One uniform pass: both the smooth EI and the zero-variance
  // degenerate value are computed, then a select picks per lane. The
  // arithmetic (and thus the result bits) matches the scalar
  // ExpectedImprovement exactly; the dead smooth lane may hold
  // NaN/Inf when sigma ~ 0, which the select discards.
  for (int i = 0; i < count; ++i) {
    double sigma = std::sqrt(std::max(variances[i], 0.0));
    double improvement = means[i] - best - xi;
    double z = improvement / sigma;
    double smooth = improvement * NormCdf(z) + sigma * NormPdf(z);
    out[i] = sigma < 1e-12 ? std::max(0.0, improvement) : smooth;
  }
}

std::vector<double> ExpectedImprovementBatch(
    const std::vector<double>& means, const std::vector<double>& variances,
    double best, double xi) {
  std::vector<double> out(means.size());
  ExpectedImprovementInto(means.data(), variances.data(),
                          static_cast<int>(means.size()), best, xi,
                          out.data());
  return out;
}

int ArgmaxExpectedImprovement(const std::vector<double>& means,
                              const std::vector<double>& variances,
                              double best, double xi) {
  std::vector<double> ei(means.size());
  ExpectedImprovementInto(means.data(), variances.data(),
                          static_cast<int>(means.size()), best, xi,
                          ei.data());
  double best_ei = -1.0;
  int best_idx = 0;
  for (size_t i = 0; i < ei.size(); ++i) {
    // A non-finite EI (degenerate surrogate output) must never win —
    // and never poison the running maximum through a NaN comparison.
    if (!std::isfinite(ei[i])) continue;
    if (ei[i] > best_ei) {
      best_ei = ei[i];
      best_idx = static_cast<int>(i);
    }
  }
  return best_idx;
}

}  // namespace llamatune
