#pragma once

#include <cstdint>
#include <vector>

#include "src/common/matrix.h"
#include "src/common/status.h"
#include "src/model/gp.h"
#include "src/model/kernels.h"
#include "src/optimizer/search_space.h"

namespace llamatune {

/// \brief Inducing-point sparse Gaussian process (FITC) for n >> 500.
///
/// The exact GP's per-round cost grows as O(n^3) at hyperparameter
/// re-optimizations and O(n^2) per candidate at prediction — the wall
/// that keeps tuning budgets at a few hundred iterations. This model
/// approximates the same Matérn-5/2 x Hamming posterior through m
/// inducing points (m << n) with the FITC likelihood (Snelson &
/// Ghahramani 2006): fit is O(n m^2), prediction O(m^2) per candidate,
/// independent of n.
///
/// Inducing points are selected *deterministically* from the training
/// history by greedy max-min (farthest-point) traversal in the
/// normalized space — no RNG, no dependence on the executor count — so
/// sparse trajectories replay bit-for-bit, which is what lets
/// checkpoint/resume cross the exact->sparse switchover (see
/// tests/checkpoint_test.cc).
///
/// Shares GpOptions (reopt schedule, restarts, num_inducing), the
/// flat Matrix/Cholesky kernels, and the global ThreadPool with the
/// exact GaussianProcess. Targets are standardized per fit; the
/// predictive variance includes the learned noise floor, matching the
/// exact model's Predict() convention.
class SparseGaussianProcess {
 public:
  SparseGaussianProcess(const SearchSpace& space, GpOptions options,
                        uint64_t seed);

  /// Replaces the training set with (X, y) and refits.
  Status Fit(const std::vector<std::vector<double>>& xs,
             const std::vector<double>& ys);

  /// Appends one training observation without refitting. O(d).
  void AddObservation(const std::vector<double>& x, double y);

  /// Fits to all observations added so far: re-selects inducing
  /// points, re-standardizes targets, re-optimizes hyperparameters on
  /// the GpOptions::reopt_interval schedule (FITC marginal likelihood,
  /// parallel restarts), and rebuilds the O(n m^2) predictor caches.
  /// O(1) when no observations were added and no re-optimization is
  /// due — the cached predictor is reused as-is.
  Status Refit();

  /// Drops all observations and the cached fit state.
  void Reset();

  /// Predictive mean and variance at `x`. O(m^2).
  void Predict(const std::vector<double>& x, double* mean,
               double* variance) const;

  /// Predictive mean and variance for every point in `xs`, blockwise
  /// and in parallel across blocks; per-point results are bit-for-bit
  /// identical to Predict().
  void PredictBatch(const std::vector<std::vector<double>>& xs,
                    std::vector<double>* means,
                    std::vector<double>* variances) const;

  int num_observations() const { return n_; }
  /// Inducing points in use (min(GpOptions::num_inducing, n)).
  int num_inducing() const { return m_; }
  /// Training-history indices of the selected inducing points.
  const std::vector<int>& inducing_indices() const { return inducing_; }
  bool fitted() const { return fitted_; }
  const KernelParams& params() const { return params_; }

  /// FITC log marginal likelihood of the current fit (diagnostics).
  double log_marginal_likelihood() const { return lml_; }

 private:
  /// Greedy max-min selection of m_ inducing points over the
  /// normalized training set (squared scaled distance + categorical
  /// mismatch count; ties break to the lowest index). Deterministic.
  void SelectInducing();
  /// Builds the (s0, mismatch) geometry between every training point
  /// and the current inducing set, plus the inducing-inducing block.
  void BuildCrossGeometry();
  /// Builds the FITC predictor caches for `params`: L_u = chol(K_uu),
  /// B = L_u^-1 K_uf, the FITC diagonal, L_m = chol(I + B D^-1 B^T),
  /// and the prediction vector w. O(n m^2).
  Status FactorPredictor(const KernelParams& params);
  /// FITC log marginal likelihood for candidate hyperparameters, from
  /// the cached cross geometry. O(n m^2).
  double EvaluateFitcLml(const KernelParams& params) const;
  /// Kernel row k(x, U) against the m_ inducing points (dim-major
  /// sweeps; `scratch` holds m_ doubles). Predict and PredictBatch
  /// both go through this, so they agree bit-for-bit.
  void KStarInducing(const BoundKernel& kernel, const double* cont,
                     const double* cat, double* row, double* scratch) const;

  SearchSpace space_;
  GpOptions options_;
  KernelSpaceCache geometry_;
  uint64_t seed_;
  int fit_count_ = 0;

  int n_ = 0;
  Matrix train_cont_;  // n x num_cont normalized continuous coords
  Matrix train_cat_;   // n x num_cat categorical coords
  std::vector<double> ys_;
  std::vector<double> ys_std_;

  int m_ = 0;
  std::vector<int> inducing_;  // training indices, selection order
  Matrix ind_cont_t_;  // num_cont x m (dim-major, for k* sweeps)
  Matrix ind_cat_t_;   // num_cat x m
  Matrix cross_s0_;    // n x m sqrt(5 * squared scaled distance)
  Matrix cross_mm_;    // n x m categorical mismatch counts (if any)
  Matrix ind_s0_;      // m x m (lower triangle)
  Matrix ind_mm_;      // m x m (lower triangle, if any)

  KernelParams params_;
  Matrix lu_;                       // chol(K_uu + jitter), m x m
  Matrix b_;                        // L_u^-1 K_uf, m x n
  std::vector<double> fitc_inv_;    // 1 / (k_ii - q_ii + noise), n
  Matrix lm_;                       // chol(I + B D^-1 B^T), m x m
  std::vector<double> w_;           // M^-1 B D^-1 y_std, m
  double y_mean_ = 0.0;
  double y_std_ = 1.0;
  double lml_ = 0.0;
  bool fitted_ = false;
  /// Observation count the cached predictor was fit on; a Refit() with
  /// no new data and no reopt due is O(1).
  int fitted_n_ = 0;
};

}  // namespace llamatune
