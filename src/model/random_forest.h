#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/optimizer/search_space.h"

namespace llamatune {

/// \brief Hyperparameters of the random-forest surrogate.
struct RandomForestOptions {
  int num_trees = 10;
  int min_samples_split = 3;
  int min_samples_leaf = 1;
  int max_depth = 24;
  /// Fraction of features considered at each split (SMAC uses 5/6).
  double feature_fraction = 5.0 / 6.0;
  /// Bootstrap-resample the training set per tree.
  bool bootstrap = true;
};

/// \brief Random-forest regression surrogate (the SMAC model, paper
/// §2.2).
///
/// Regression trees with variance-reduction splits. Continuous
/// features split on thresholds; categorical features split on
/// one-vs-rest category membership — no artificial ordering is imposed
/// on categorical knobs, which is the property that makes RF
/// surrogates effective on heterogeneous DBMS spaces.
///
/// The predictive distribution follows SMAC: the mean is the average
/// of per-tree leaf means, and the variance applies the law of total
/// variance across trees (variance of leaf means + mean of leaf
/// variances).
class RandomForest {
 public:
  RandomForest(const SearchSpace& space, RandomForestOptions options,
               uint64_t seed);
  ~RandomForest();
  RandomForest(RandomForest&&) noexcept;
  RandomForest& operator=(RandomForest&&) noexcept;

  /// Fits the forest to (X, y). Re-fitting replaces all trees.
  void Fit(const std::vector<std::vector<double>>& xs,
           const std::vector<double>& ys);

  /// Predictive mean and variance at `x`. Must be fitted first.
  void Predict(const std::vector<double>& x, double* mean,
               double* variance) const;

  double PredictMean(const std::vector<double>& x) const;

  bool fitted() const { return fitted_; }
  int num_trees() const { return options_.num_trees; }

 private:
  struct Tree;

  SearchSpace space_;
  RandomForestOptions options_;
  Rng rng_;
  std::vector<std::unique_ptr<Tree>> trees_;
  bool fitted_ = false;
};

}  // namespace llamatune
