#pragma once

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/model/kernels.h"
#include "src/optimizer/search_space.h"

namespace llamatune {

/// \brief Options for GP fitting.
struct GpOptions {
  /// Random-search restarts for hyperparameter selection by maximum
  /// log marginal likelihood.
  int hyperparameter_restarts = 24;
  /// Re-optimize hyperparameters every this many Fit() calls (1 =
  /// always); between re-optimizations the previous optimum is reused.
  int reopt_interval = 5;
  double min_noise_variance = 1e-6;
};

/// \brief Exact Gaussian-process regression over a mixed search space.
///
/// Uses the Matérn-5/2 x Hamming product kernel (see kernels.h), a
/// Cholesky factorization of the Gram matrix, and marginal-likelihood
/// hyperparameter selection via seeded random search. Targets are
/// internally standardized (zero mean, unit variance) for numerical
/// stability; predictions are returned on the original scale.
class GaussianProcess {
 public:
  GaussianProcess(const SearchSpace& space, GpOptions options, uint64_t seed);

  /// Fits the GP to (X, y). Returns an error if the Cholesky
  /// factorization fails even after jitter escalation.
  Status Fit(const std::vector<std::vector<double>>& xs,
             const std::vector<double>& ys);

  /// Predictive mean and variance at `x`.
  void Predict(const std::vector<double>& x, double* mean,
               double* variance) const;

  bool fitted() const { return fitted_; }
  const KernelParams& params() const { return params_; }

  /// Log marginal likelihood of the current fit (diagnostics).
  double log_marginal_likelihood() const { return lml_; }

 private:
  Status FactorAndCache(const KernelParams& params,
                        const std::vector<std::vector<double>>& xs,
                        const std::vector<double>& ys_std);
  double EvaluateLml(const KernelParams& params,
                     const std::vector<std::vector<double>>& xs,
                     const std::vector<double>& ys_std) const;

  SearchSpace space_;
  GpOptions options_;
  uint64_t seed_;
  int fit_count_ = 0;

  KernelParams params_;
  std::vector<std::vector<double>> train_x_;
  std::vector<std::vector<double>> chol_;  // lower-triangular L
  std::vector<double> alpha_;              // K^-1 (y - mean)
  double y_mean_ = 0.0;
  double y_std_ = 1.0;
  double lml_ = 0.0;
  bool fitted_ = false;
};

/// \name Dense linear algebra helpers (exposed for tests)
/// @{

/// In-place Cholesky: returns lower-triangular L with A = L L^T, or an
/// error if A is not positive definite.
Status CholeskyFactor(std::vector<std::vector<double>> a,
                      std::vector<std::vector<double>>* l);

/// Solves L z = b (forward substitution).
std::vector<double> ForwardSolve(const std::vector<std::vector<double>>& l,
                                 const std::vector<double>& b);

/// Solves L^T z = b (backward substitution).
std::vector<double> BackwardSolve(const std::vector<std::vector<double>>& l,
                                  const std::vector<double>& b);
/// @}

}  // namespace llamatune
