#pragma once

#include <cstdint>
#include <vector>

#include "src/common/matrix.h"
#include "src/common/status.h"
#include "src/model/kernels.h"
#include "src/optimizer/search_space.h"

namespace llamatune {

/// \brief Options for GP fitting.
struct GpOptions {
  /// Random-search restarts for hyperparameter selection by maximum
  /// log marginal likelihood.
  int hyperparameter_restarts = 24;
  /// Re-optimize hyperparameters every this many Refit() calls (1 =
  /// always); between re-optimizations the previous optimum is reused.
  int reopt_interval = 5;
  double min_noise_variance = 1e-6;
  /// Between hyperparameter re-optimizations, extend the cached
  /// Cholesky factor by one row/column per new observation (O(n^2))
  /// instead of refactorizing from scratch (O(n^3)). The extension
  /// arithmetic is bit-for-bit identical to a full refactorization of
  /// the same Gram matrix, and any extension failure falls back to the
  /// full path, so this is purely a performance switch.
  bool incremental = true;
  /// Executor cap for parallel sections (hyperparameter restarts,
  /// batch prediction). 0 = shared pool size; 1 = serial.
  int num_threads = 0;
  /// Exact -> sparse switchover for GP-BO: once the training set
  /// reaches this many observations, suggestion scoring runs through
  /// the inducing-point SparseGaussianProcess (O(n m^2) fit, O(m^2)
  /// predict) instead of the exact model. 0 disables the switchover —
  /// and trajectories below the threshold are bit-for-bit identical to
  /// a sparse-disabled run, so enabling it can only change large-n
  /// behavior. Consumed by GpBoOptimizer and SparseGaussianProcess,
  /// not by the exact GaussianProcess itself.
  int sparse_threshold = 0;
  /// Inducing-point budget m for the sparse predictor (clamped to the
  /// training-set size). Larger m tracks the exact posterior more
  /// closely at O(n m^2) fit cost.
  int num_inducing = 64;
};

/// \brief Exact Gaussian-process regression over a mixed search space.
///
/// Uses the Matérn-5/2 x Hamming product kernel (see kernels.h), a
/// Cholesky factorization of the Gram matrix, and marginal-likelihood
/// hyperparameter selection via seeded random search. Targets are
/// internally standardized (zero mean, unit variance) for numerical
/// stability; predictions are returned on the original scale.
///
/// The fitting hot path is incremental: training points accumulate via
/// AddObservation(), the pairwise (distance, mismatch) geometry and the
/// Cholesky factor are cached across Refit() calls, and — between
/// hyperparameter re-optimizations — each new observation extends the
/// cached factor in O(n^2) rather than refitting in O(n^3).
///
/// Target standardization follows the hyperparameter schedule: the
/// (mean, stddev) pair refreshes at re-optimization boundaries (where
/// the full O(n^3) refactorization happens anyway) and stays frozen
/// between them — the hyperparameters in use were selected under that
/// standardization, so the model stays internally consistent. The
/// freeze is what makes the *alpha-prefix invariant* hold: the forward
/// -solve vector z = L^-1 y_std is cached alongside the factor, a
/// CholeskyExtend step appends exactly one new z entry (forward
/// substitution is prefix-stable), and refreshing alpha costs one
/// O(n^2) back-substitution instead of two full triangular solves.
/// The cached-prefix arithmetic is bit-for-bit identical to solving
/// from scratch against the same factor (tests/gp_test.cc pins the
/// incremental path against the full-refit path over a session).
class GaussianProcess {
 public:
  GaussianProcess(const SearchSpace& space, GpOptions options, uint64_t seed);

  /// Replaces the training set with (X, y) and refits: equivalent to
  /// Reset() + AddObservation()* + Refit(). Returns an error if the
  /// Cholesky factorization fails even after jitter escalation.
  Status Fit(const std::vector<std::vector<double>>& xs,
             const std::vector<double>& ys);

  /// Appends one training observation without refitting. O(d).
  void AddObservation(const std::vector<double>& x, double y);

  /// Fits to all observations added so far. Incremental when possible
  /// (see class comment): between re-optimizations each new
  /// observation costs one O(n^2) factor extension plus one O(n^2)
  /// back-substitution (the forward-solve prefix is cached), and with
  /// no new data the call is O(1) — the cached fit is already current.
  Status Refit();

  /// Advances the Refit() schedule by `steps` extra calls without
  /// fitting. A batch-aware optimizer that refits once per q-point
  /// round (instead of once per suggestion) calls this with q-1 so the
  /// hyperparameter re-optimization cadence stays "every
  /// reopt_interval suggestions", matching the sequential path's model
  /// quality per observation. A re-optimization boundary inside the
  /// skipped stretch is not lost: the next Refit() honors it (without
  /// this, a batch size sharing a factor with reopt_interval could
  /// phase-skip every boundary and never re-optimize again).
  void AdvanceFitSchedule(int steps);

  /// Drops all observations and the cached fit state.
  void Reset();

  /// Fantasy conditioning: appends (x, y) as a training observation and
  /// rank-extends the cached Cholesky factor under the *current*
  /// hyperparameters and target standardization — no hyperparameter
  /// re-optimization, no Refit() schedule advance. O(n^2), and
  /// bit-for-bit deterministic at any thread count. Requires fitted().
  ///
  /// This is the greedy q-EI primitive: a *copy* of a fitted GP is
  /// conditioned on hallucinated outcomes (the posterior mean at each
  /// picked point) so subsequent acquisition maximizations are pushed
  /// away from points the batch already covers, then the copy is
  /// discarded. The real model never sees fantasies.
  Status Condition(const std::vector<double>& x, double y);

  /// Predictive mean and variance at `x`.
  void Predict(const std::vector<double>& x, double* mean,
               double* variance) const;

  /// Predictive mean and variance for every point in `xs` in one pass:
  /// all k_star columns are solved against the cached Cholesky factor
  /// blockwise (and in parallel across blocks). Per-point results are
  /// bit-for-bit identical to Predict().
  void PredictBatch(const std::vector<std::vector<double>>& xs,
                    std::vector<double>* means,
                    std::vector<double>* variances) const;

  int num_observations() const { return n_; }
  bool fitted() const { return fitted_; }
  const KernelParams& params() const { return params_; }

  /// Log marginal likelihood of the current fit (diagnostics).
  double log_marginal_likelihood() const { return lml_; }

 private:
  /// Extends the cached pairwise distance/mismatch matrices to cover
  /// all n_ observations (O(new_rows * n * d)).
  void ExtendGeometry();
  /// Materializes the Gram matrix (no nugget) for `kernel` from the
  /// cached geometry in O(n^2) — one exp per pair.
  void BuildGram(const BoundKernel& kernel, Matrix* out) const;
  /// Full factorization with jitter escalation: the Gram matrix is
  /// built once; failed attempts only bump the diagonal nugget and
  /// refactor (no O(n^2 d) kernel-matrix rebuild).
  Status FactorFull(const KernelParams& params);
  /// Rank-extends the cached factor for rows [old_n, n_). Falls back
  /// to FactorFull() if the extension loses positive definiteness.
  Status ExtendFactor(int old_n);
  /// Recomputes alpha = K^-1 y_std and the log marginal likelihood
  /// from the cached factor, resuming the cached forward-solve prefix
  /// z_ where it left off: after a FactorFull the prefix is empty and
  /// this is the classic two full solves; after a CholeskyExtend it is
  /// one new z entry plus one O(n^2) back-substitution. Bit-for-bit
  /// identical either way (forward substitution is prefix-stable).
  void ComputeAlphaAndLml();
  double EvaluateLml(const KernelParams& params) const;

  SearchSpace space_;
  GpOptions options_;
  KernelSpaceCache geometry_;
  uint64_t seed_;
  int fit_count_ = 0;
  /// AdvanceFitSchedule() jumped over a reopt boundary: the next
  /// Refit() re-optimizes hyperparameters regardless of phase.
  bool reopt_owed_ = false;

  /// Kernel row k(x, X_train) for a split/normalized query against the
  /// first `m` training points, via dim-major sweeps over the
  /// transposed training blocks (vectorizes across training points).
  /// `sq_scratch` must hold m doubles. Both Predict and PredictBatch
  /// go through this, so their results are bit-for-bit identical.
  void KStarRow(const BoundKernel& kernel, const double* cont,
                const double* cat, int m, double* row,
                double* sq_scratch) const;

  int n_ = 0;
  Matrix train_cont_;   // n x num_cont normalized continuous coords
  Matrix train_cat_;    // n x num_cat categorical coords
  Matrix train_cont_t_;  // num_cont x n (dim-major, for prediction sweeps)
  Matrix train_cat_t_;   // num_cat x n
  std::vector<double> ys_;
  std::vector<double> ys_std_;
  Matrix s0_;           // n x n sqrt(5 * squared scaled distance)
  Matrix mismatch_;     // n x n categorical mismatch counts (if any)
  int geometry_rows_ = 0;

  KernelParams params_;
  Matrix gram_;         // cached Gram (no nugget) for params_
  Matrix chol_;         // lower-triangular L, chol_.rows() rows factored
  /// Cached forward-solve prefix z = L^-1 y_std, valid for the first
  /// z_.size() rows of chol_. Cleared whenever the factor or the
  /// standardization is rebuilt (FactorFull); extended in O(n) per new
  /// row otherwise.
  std::vector<double> z_;
  std::vector<double> alpha_;  // K^-1 (y - mean)
  double y_mean_ = 0.0;
  double y_std_ = 1.0;
  double lml_ = 0.0;
  bool fitted_ = false;
};

/// Draws the hyperparameter-restart candidates for fit call
/// `fit_count` from a fixed serial RNG stream (log-uniform priors,
/// noise clamped to GpOptions::min_noise_variance). One definition
/// shared by the exact and sparse models, so their restart priors can
/// never drift apart; candidates are scored in parallel by the caller
/// and the stream is executor-independent.
std::vector<KernelParams> DrawKernelRestarts(const GpOptions& options,
                                             uint64_t seed, int fit_count);

/// \name Dense linear algebra helpers (exposed for tests and the
/// legacy-path reference in bench/bm_hotpath.cc)
/// @{

/// Cholesky factorization: returns lower-triangular L with A = L L^T,
/// or an error if A is not positive definite.
Status CholeskyFactor(std::vector<std::vector<double>> a,
                      std::vector<std::vector<double>>* l);

/// Solves L z = b (forward substitution).
std::vector<double> ForwardSolve(const std::vector<std::vector<double>>& l,
                                 const std::vector<double>& b);

/// Solves L^T z = b (backward substitution).
std::vector<double> BackwardSolve(const std::vector<std::vector<double>>& l,
                                  const std::vector<double>& b);
/// @}

}  // namespace llamatune
