#pragma once

#include <cmath>
#include <vector>

#include "src/optimizer/search_space.h"

namespace llamatune {

/// \brief Hyperparameters of the mixed-space GP kernel.
///
/// GP-BO (Ru et al. 2020; paper §2.2) combines a Matérn-5/2 kernel
/// over continuous dimensions with a Hamming kernel over categorical
/// dimensions, multiplied together, so that categorical knobs carry no
/// artificial ordering.
struct KernelParams {
  double signal_variance = 1.0;   ///< sigma_f^2
  double lengthscale = 0.5;       ///< Matérn lengthscale (unit-scaled dims)
  double hamming_weight = 1.0;    ///< categorical mismatch penalty rate
  double noise_variance = 1e-4;   ///< sigma_n^2 (added on the diagonal)
};

/// \brief Matérn-5/2 correlation for scaled distance r = |x-x'| / l.
double Matern52(double r);

/// \brief Mixed Matérn-5/2 x Hamming covariance between two points of
/// `space`. Continuous coordinates are internally normalized to [0,1]
/// by the dimension bounds; categorical coordinates contribute
/// exp(-hamming_weight * mismatch_fraction).
double MixedKernel(const SearchSpace& space, const KernelParams& params,
                   const std::vector<double>& a, const std::vector<double>& b);

/// \brief Dense symmetric kernel (Gram) matrix K[i][j] = k(xs[i], xs[j])
/// with noise_variance added on the diagonal.
std::vector<std::vector<double>> KernelMatrix(
    const SearchSpace& space, const KernelParams& params,
    const std::vector<std::vector<double>>& xs);

/// \brief Precomputed per-space kernel geometry: which dimensions are
/// continuous vs categorical, and the inverse span of each continuous
/// dimension.
///
/// The hot path splits every point once per fit into a dense continuous
/// block (scaled by the precomputed inverse span — one multiply instead
/// of a divide per kernel evaluation) and a dense categorical block, so
/// distance loops are branch-free and contiguous. A point pair then
/// reduces to (scaled distance, mismatch count), both independent of
/// the kernel hyperparameters — hyperparameter search re-evaluates the
/// Gram matrix in O(n^2) instead of O(n^2 d).
struct KernelSpaceCache {
  explicit KernelSpaceCache(const SearchSpace& space);

  std::vector<int> cont_dims;     ///< indices of continuous dims
  std::vector<int> cat_dims;      ///< indices of categorical dims
  std::vector<double> inv_span;   ///< 1/(hi-lo) per cont_dims entry
  int num_cont = 0;
  int num_cat = 0;
};

/// Splits raw point `x` into normalized continuous coordinates
/// (`cont_out`, num_cont doubles, scaled by the inverse span) and
/// categorical coordinates (`cat_out`, num_cat doubles).
void SplitPoint(const KernelSpaceCache& cache, const double* x,
                double* cont_out, double* cat_out);

/// Branch-free squared Euclidean distance over `m` contiguous coords.
double SquaredDistance(const double* a, const double* b, int m);

/// Number of unequal coordinates over `m` contiguous coords.
double CountMismatches(const double* a, const double* b, int m);

/// \brief Kernel evaluator bound to one (space, hyperparameter) pair.
///
/// Precomputes the inverse lengthscale and a Hamming-factor table over
/// the (num_cat + 1) possible mismatch counts, so each pair evaluation
/// costs a single exp. Used for every covariance computed from cached
/// geometry — Gram builds, incremental row extensions, and prediction —
/// which keeps all paths bit-for-bit consistent with each other.
class BoundKernel {
 public:
  BoundKernel(const KernelSpaceCache& cache, const KernelParams& params);

  /// Matérn-5/2 part (including the signal variance) from
  /// s0 = sqrt(5 * sq_dist) — the lengthscale-free piece of the Matérn
  /// argument, cacheable across hyperparameter changes.
  double MaternFromS0(double s0) const {
    if (!has_cont_) return signal_variance_;
    double s = s0 * inv_lengthscale_;
    return signal_variance_ * (1.0 + s + s * s / 3.0) * std::exp(-s);
  }

  /// Hamming factor for a categorical mismatch count (table lookup;
  /// exactly 1.0 for spaces without categorical dims).
  double HammingFactor(double mismatches) const {
    return hamming_.empty() ? 1.0 : hamming_[static_cast<int>(mismatches)];
  }

  /// Covariance from precomputed (s0, mismatch count).
  double FromPrecomputed(double s0, double mismatches) const {
    return MaternFromS0(s0) * HammingFactor(mismatches);
  }

  /// Covariance from a raw squared scaled distance + mismatch count.
  double FromDistance(double sq_dist, double mismatches) const {
    return FromPrecomputed(std::sqrt(5.0 * sq_dist), mismatches);
  }

 private:
  double signal_variance_;
  double inv_lengthscale_;
  bool has_cont_;
  std::vector<double> hamming_;  // exp(-w * mm / num_cat) per count
};

}  // namespace llamatune
