#pragma once

#include <vector>

#include "src/optimizer/search_space.h"

namespace llamatune {

/// \brief Hyperparameters of the mixed-space GP kernel.
///
/// GP-BO (Ru et al. 2020; paper §2.2) combines a Matérn-5/2 kernel
/// over continuous dimensions with a Hamming kernel over categorical
/// dimensions, multiplied together, so that categorical knobs carry no
/// artificial ordering.
struct KernelParams {
  double signal_variance = 1.0;   ///< sigma_f^2
  double lengthscale = 0.5;       ///< Matérn lengthscale (unit-scaled dims)
  double hamming_weight = 1.0;    ///< categorical mismatch penalty rate
  double noise_variance = 1e-4;   ///< sigma_n^2 (added on the diagonal)
};

/// \brief Matérn-5/2 correlation for scaled distance r = |x-x'| / l.
double Matern52(double r);

/// \brief Mixed Matérn-5/2 x Hamming covariance between two points of
/// `space`. Continuous coordinates are internally normalized to [0,1]
/// by the dimension bounds; categorical coordinates contribute
/// exp(-hamming_weight * mismatch_fraction).
double MixedKernel(const SearchSpace& space, const KernelParams& params,
                   const std::vector<double>& a, const std::vector<double>& b);

/// \brief Dense symmetric kernel (Gram) matrix K[i][j] = k(xs[i], xs[j])
/// with noise_variance added on the diagonal.
std::vector<std::vector<double>> KernelMatrix(
    const SearchSpace& space, const KernelParams& params,
    const std::vector<std::vector<double>>& xs);

}  // namespace llamatune
