#include "src/nn/adam.h"

#include <cmath>

namespace llamatune {

void AdamOptimizer::Register(std::vector<double>* params,
                             std::vector<double>* grads) {
  Slot slot;
  slot.params = params;
  slot.grads = grads;
  slot.m.assign(params->size(), 0.0);
  slot.v.assign(params->size(), 0.0);
  slots_.push_back(std::move(slot));
}

void AdamOptimizer::Step() {
  ++t_;
  double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (Slot& slot : slots_) {
    std::vector<double>& p = *slot.params;
    const std::vector<double>& g = *slot.grads;
    for (size_t i = 0; i < p.size(); ++i) {
      slot.m[i] = beta1_ * slot.m[i] + (1.0 - beta1_) * g[i];
      slot.v[i] = beta2_ * slot.v[i] + (1.0 - beta2_) * g[i] * g[i];
      double m_hat = slot.m[i] / bias1;
      double v_hat = slot.v[i] / bias2;
      p[i] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
}

}  // namespace llamatune
