#include "src/nn/matrix.h"

namespace llamatune {

std::vector<double> Matrix::Apply(const std::vector<double>& x) const {
  std::vector<double> y(rows_, 0.0);
  for (int r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = &data_[static_cast<size_t>(r) * cols_];
    for (int c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

std::vector<double> Matrix::ApplyTransposed(const std::vector<double>& x) const {
  std::vector<double> y(cols_, 0.0);
  for (int r = 0; r < rows_; ++r) {
    const double* row = &data_[static_cast<size_t>(r) * cols_];
    for (int c = 0; c < cols_; ++c) y[c] += row[c] * x[r];
  }
  return y;
}

}  // namespace llamatune
