#pragma once

#include <vector>

#include "src/common/rng.h"
#include "src/common/matrix.h"

namespace llamatune {

/// \brief Fully connected layer y = W x + b with manual backprop.
///
/// Forward caches the input; Backward accumulates dW/db and returns
/// the gradient with respect to the input. Gradients accumulate until
/// ZeroGrad() so minibatch updates sum naturally.
class LinearLayer {
 public:
  LinearLayer(int in_dim, int out_dim, Rng* rng);

  std::vector<double> Forward(const std::vector<double>& x);
  std::vector<double> Backward(const std::vector<double>& grad_out);

  void ZeroGrad();

  Matrix& weights() { return w_; }
  std::vector<double>& bias() { return b_; }
  Matrix& weight_grads() { return dw_; }
  std::vector<double>& bias_grads() { return db_; }
  int in_dim() const { return w_.cols(); }
  int out_dim() const { return w_.rows(); }

 private:
  Matrix w_;
  std::vector<double> b_;
  Matrix dw_;
  std::vector<double> db_;
  std::vector<double> last_input_;
};

/// \brief Elementwise tanh with cached output for backprop.
class TanhLayer {
 public:
  std::vector<double> Forward(const std::vector<double>& x);
  std::vector<double> Backward(const std::vector<double>& grad_out) const;

 private:
  std::vector<double> last_output_;
};

/// \brief Elementwise ReLU with cached mask for backprop.
class ReluLayer {
 public:
  std::vector<double> Forward(const std::vector<double>& x);
  std::vector<double> Backward(const std::vector<double>& grad_out) const;

 private:
  std::vector<bool> mask_;
};

}  // namespace llamatune
