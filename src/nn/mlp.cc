#include "src/nn/mlp.h"

namespace llamatune {

Mlp::Mlp(int in_dim, std::vector<int> hidden_dims, int out_dim,
         OutputActivation output_activation, Rng* rng)
    : in_dim_(in_dim), out_dim_(out_dim),
      output_activation_(output_activation) {
  int prev = in_dim;
  for (int h : hidden_dims) {
    linears_.push_back(std::make_unique<LinearLayer>(prev, h, rng));
    prev = h;
  }
  linears_.push_back(std::make_unique<LinearLayer>(prev, out_dim, rng));
  relus_.resize(hidden_dims.size());
}

std::vector<double> Mlp::Forward(const std::vector<double>& x) {
  std::vector<double> h = x;
  for (size_t i = 0; i + 1 < linears_.size(); ++i) {
    h = linears_[i]->Forward(h);
    h = relus_[i].Forward(h);
  }
  h = linears_.back()->Forward(h);
  if (output_activation_ == OutputActivation::kTanh) {
    h = out_tanh_.Forward(h);
  }
  return h;
}

std::vector<double> Mlp::Backward(const std::vector<double>& grad_out) {
  std::vector<double> g = grad_out;
  if (output_activation_ == OutputActivation::kTanh) {
    g = out_tanh_.Backward(g);
  }
  g = linears_.back()->Backward(g);
  for (int i = static_cast<int>(linears_.size()) - 2; i >= 0; --i) {
    g = relus_[i].Backward(g);
    g = linears_[i]->Backward(g);
  }
  return g;
}

void Mlp::ZeroGrad() {
  for (auto& layer : linears_) layer->ZeroGrad();
}

void Mlp::RegisterParams(AdamOptimizer* adam) {
  for (auto& layer : linears_) {
    adam->Register(&layer->weights().data(), &layer->weight_grads().data());
    adam->Register(&layer->bias(), &layer->bias_grads());
  }
}

void Mlp::SoftUpdateFrom(const Mlp& source, double tau) {
  for (size_t i = 0; i < linears_.size(); ++i) {
    auto& dst_w = linears_[i]->weights().data();
    const auto& src_w = source.linears_[i]->weights().data();
    for (size_t k = 0; k < dst_w.size(); ++k) {
      dst_w[k] = tau * src_w[k] + (1.0 - tau) * dst_w[k];
    }
    auto& dst_b = linears_[i]->bias();
    const auto& src_b = source.linears_[i]->bias();
    for (size_t k = 0; k < dst_b.size(); ++k) {
      dst_b[k] = tau * src_b[k] + (1.0 - tau) * dst_b[k];
    }
  }
}

void Mlp::CopyFrom(const Mlp& source) { SoftUpdateFrom(source, 1.0); }

}  // namespace llamatune
