#include "src/nn/layers.h"

#include <cmath>

namespace llamatune {

LinearLayer::LinearLayer(int in_dim, int out_dim, Rng* rng)
    : w_(out_dim, in_dim),
      b_(out_dim, 0.0),
      dw_(out_dim, in_dim),
      db_(out_dim, 0.0) {
  // Xavier/Glorot uniform initialization.
  double bound = std::sqrt(6.0 / static_cast<double>(in_dim + out_dim));
  for (double& v : w_.data()) v = rng->Uniform(-bound, bound);
}

std::vector<double> LinearLayer::Forward(const std::vector<double>& x) {
  last_input_ = x;
  std::vector<double> y = w_.Apply(x);
  for (int i = 0; i < static_cast<int>(y.size()); ++i) y[i] += b_[i];
  return y;
}

std::vector<double> LinearLayer::Backward(const std::vector<double>& grad_out) {
  for (int r = 0; r < w_.rows(); ++r) {
    db_[r] += grad_out[r];
    for (int c = 0; c < w_.cols(); ++c) {
      dw_.at(r, c) += grad_out[r] * last_input_[c];
    }
  }
  return w_.ApplyTransposed(grad_out);
}

void LinearLayer::ZeroGrad() {
  for (double& v : dw_.data()) v = 0.0;
  for (double& v : db_) v = 0.0;
}

std::vector<double> TanhLayer::Forward(const std::vector<double>& x) {
  last_output_.resize(x.size());
  for (size_t i = 0; i < x.size(); ++i) last_output_[i] = std::tanh(x[i]);
  return last_output_;
}

std::vector<double> TanhLayer::Backward(
    const std::vector<double>& grad_out) const {
  std::vector<double> grad_in(grad_out.size());
  for (size_t i = 0; i < grad_out.size(); ++i) {
    grad_in[i] = grad_out[i] * (1.0 - last_output_[i] * last_output_[i]);
  }
  return grad_in;
}

std::vector<double> ReluLayer::Forward(const std::vector<double>& x) {
  mask_.resize(x.size());
  std::vector<double> y(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    mask_[i] = x[i] > 0.0;
    y[i] = mask_[i] ? x[i] : 0.0;
  }
  return y;
}

std::vector<double> ReluLayer::Backward(
    const std::vector<double>& grad_out) const {
  std::vector<double> grad_in(grad_out.size());
  for (size_t i = 0; i < grad_out.size(); ++i) {
    grad_in[i] = mask_[i] ? grad_out[i] : 0.0;
  }
  return grad_in;
}

}  // namespace llamatune
