#pragma once

#include <vector>

namespace llamatune {

/// \brief Adam optimizer state for one flat parameter array.
///
/// Each registered parameter array gets first/second moment buffers;
/// Step() applies the standard bias-corrected Adam update in place.
class AdamOptimizer {
 public:
  explicit AdamOptimizer(double learning_rate = 1e-3, double beta1 = 0.9,
                         double beta2 = 0.999, double epsilon = 1e-8)
      : lr_(learning_rate), beta1_(beta1), beta2_(beta2), eps_(epsilon) {}

  /// Registers a parameter array and its gradient array (both must
  /// outlive the optimizer and keep their size).
  void Register(std::vector<double>* params, std::vector<double>* grads);

  /// Applies one Adam step to every registered array.
  void Step();

  double learning_rate() const { return lr_; }
  long step_count() const { return t_; }

 private:
  struct Slot {
    std::vector<double>* params;
    std::vector<double>* grads;
    std::vector<double> m;
    std::vector<double> v;
  };

  double lr_, beta1_, beta2_, eps_;
  long t_ = 0;
  std::vector<Slot> slots_;
};

}  // namespace llamatune
