#pragma once

#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/nn/adam.h"
#include "src/nn/layers.h"

namespace llamatune {

/// \brief Output nonlinearity of an Mlp.
enum class OutputActivation { kLinear, kTanh };

/// \brief Small fully connected network: Linear+ReLU hidden layers and
/// a linear or tanh output head. Used for the DDPG actor (tanh head)
/// and critic (linear head).
class Mlp {
 public:
  Mlp(int in_dim, std::vector<int> hidden_dims, int out_dim,
      OutputActivation output_activation, Rng* rng);

  std::vector<double> Forward(const std::vector<double>& x);

  /// Backpropagates d(loss)/d(output); accumulates parameter grads and
  /// returns d(loss)/d(input).
  std::vector<double> Backward(const std::vector<double>& grad_out);

  void ZeroGrad();

  /// Registers all parameters with `adam`.
  void RegisterParams(AdamOptimizer* adam);

  /// Polyak-averaged copy: this = tau * source + (1 - tau) * this.
  /// Networks must have identical architecture.
  void SoftUpdateFrom(const Mlp& source, double tau);

  /// Hard copy of all parameters from `source`.
  void CopyFrom(const Mlp& source);

  int in_dim() const { return in_dim_; }
  int out_dim() const { return out_dim_; }

 private:
  int in_dim_;
  int out_dim_;
  OutputActivation output_activation_;
  std::vector<std::unique_ptr<LinearLayer>> linears_;
  std::vector<ReluLayer> relus_;
  TanhLayer out_tanh_;
};

}  // namespace llamatune
