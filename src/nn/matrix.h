#pragma once

#include <cstddef>
#include <vector>

namespace llamatune {

/// \brief Minimal dense row-major matrix of doubles.
///
/// Just enough linear algebra for the DDPG actor/critic networks:
/// matrix-vector products, transposed products, and element access.
/// Not a general-purpose BLAS — sizes here are tens of units, so
/// clarity wins over vectorization.
class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows) * cols, fill) {}

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  double& at(int r, int c) { return data_[static_cast<size_t>(r) * cols_ + c]; }
  double at(int r, int c) const {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  /// y = M x  (x has cols() entries; y has rows() entries).
  std::vector<double> Apply(const std::vector<double>& x) const;

  /// y = M^T x (x has rows() entries; y has cols() entries).
  std::vector<double> ApplyTransposed(const std::vector<double>& x) const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;
};

}  // namespace llamatune
