#include "src/dbsim/workloads.h"

namespace llamatune {
namespace dbsim {

WorkloadSpec YcsbA() {
  WorkloadSpec w;
  w.name = "YCSB-A";
  w.num_tables = 1;
  w.num_columns = 11;
  w.read_only_txn_fraction = 0.50;
  w.zipf_theta = 0.9;
  w.working_set_gb = 7.0;
  w.pages_per_txn = 3.0;
  w.rows_written = 1.0;
  w.wal_kb_per_txn = 1.5;
  w.base_cpu_ms = 0.45;
  w.contention = 0.25;
  w.planner_complexity = 0.05;
  w.scan_fraction = 0.0;
  w.mem_sensitivity = 1.0;
  w.wal_sensitivity = 1.0;
  w.writeback_sensitivity = 0.05;
  w.vacuum_sensitivity = 0.8;
  w.default_throughput = 13600.0;
  return w;
}

WorkloadSpec YcsbB() {
  WorkloadSpec w;
  w.name = "YCSB-B";
  w.num_tables = 1;
  w.num_columns = 11;
  w.read_only_txn_fraction = 0.95;
  w.zipf_theta = 0.9;
  w.working_set_gb = 7.0;
  w.pages_per_txn = 2.5;
  w.rows_written = 1.0;
  w.wal_kb_per_txn = 1.5;
  w.base_cpu_ms = 0.10;
  w.contention = 0.05;
  w.planner_complexity = 0.05;
  w.scan_fraction = 0.0;
  w.mem_sensitivity = 0.5;
  w.wal_sensitivity = 0.35;
  // The headline hybrid-knob workload: kernel writeback interference
  // dominates unless backend_flush_after's special value disables
  // forced writeback (paper Fig. 4).
  w.writeback_sensitivity = 1.2;
  w.vacuum_sensitivity = 0.25;
  w.default_throughput = 61000.0;
  return w;
}

WorkloadSpec TpcC() {
  WorkloadSpec w;
  w.name = "TPC-C";
  w.num_tables = 9;
  w.num_columns = 92;
  w.read_only_txn_fraction = 0.08;
  w.zipf_theta = 0.4;
  w.working_set_gb = 10.0;
  w.pages_per_txn = 18.0;
  w.rows_written = 12.0;
  w.wal_kb_per_txn = 10.0;
  w.base_cpu_ms = 2.5;
  w.contention = 0.55;
  w.planner_complexity = 0.45;
  w.scan_fraction = 0.05;
  w.mem_sensitivity = 0.7;
  w.wal_sensitivity = 1.0;
  w.writeback_sensitivity = 0.1;
  w.vacuum_sensitivity = 1.0;
  w.default_throughput = 1450.0;
  return w;
}

WorkloadSpec Seats() {
  WorkloadSpec w;
  w.name = "SEATS";
  w.num_tables = 10;
  w.num_columns = 189;
  w.read_only_txn_fraction = 0.45;
  w.zipf_theta = 0.6;
  w.working_set_gb = 9.0;
  w.pages_per_txn = 10.0;
  w.rows_written = 4.0;
  w.wal_kb_per_txn = 5.0;
  w.base_cpu_ms = 1.3;
  w.contention = 0.35;
  w.planner_complexity = 0.6;
  w.scan_fraction = 0.15;
  w.mem_sensitivity = 0.6;
  w.wal_sensitivity = 0.8;
  w.writeback_sensitivity = 0.08;
  w.vacuum_sensitivity = 0.7;
  w.default_throughput = 5600.0;
  return w;
}

WorkloadSpec Twitter() {
  WorkloadSpec w;
  w.name = "Twitter";
  w.num_tables = 5;
  w.num_columns = 18;
  w.read_only_txn_fraction = 0.01;
  w.zipf_theta = 0.95;  // public traces: heavily skewed
  w.working_set_gb = 4.0;
  w.pages_per_txn = 2.0;
  w.rows_written = 1.2;
  w.wal_kb_per_txn = 1.0;
  w.base_cpu_ms = 0.08;
  w.contention = 0.3;
  w.planner_complexity = 0.15;
  w.scan_fraction = 0.0;
  w.mem_sensitivity = 0.4;
  w.wal_sensitivity = 0.9;
  w.writeback_sensitivity = 0.12;
  w.vacuum_sensitivity = 0.6;
  w.default_throughput = 83000.0;
  return w;
}

WorkloadSpec ResourceStresser() {
  WorkloadSpec w;
  w.name = "RS";
  w.num_tables = 4;
  w.num_columns = 23;
  w.read_only_txn_fraction = 0.33;
  w.zipf_theta = 0.0;  // uniform: deliberately cache-unfriendly
  w.working_set_gb = 18.0;
  w.pages_per_txn = 6.0;
  w.rows_written = 2.0;
  w.wal_kb_per_txn = 2.0;
  // Synthetic independent contention on CPU, I/O and locks: most of
  // the time is fixed CPU burn, so knob tuning has little headroom
  // (paper: total gains over default only ~10%).
  w.base_cpu_ms = 6.4;
  w.contention = 0.5;
  w.planner_complexity = 0.0;
  w.scan_fraction = 0.0;
  w.mem_sensitivity = 0.15;
  w.wal_sensitivity = 0.25;
  w.writeback_sensitivity = 0.02;
  w.vacuum_sensitivity = 0.2;
  w.default_throughput = 4700.0;
  return w;
}

std::vector<WorkloadSpec> AllWorkloads() {
  return {YcsbA(), YcsbB(), TpcC(), Seats(), Twitter(), ResourceStresser()};
}

Result<WorkloadSpec> WorkloadByName(const std::string& name) {
  for (const WorkloadSpec& w : AllWorkloads()) {
    if (w.name == name) return w;
  }
  return Status::NotFound("unknown workload '" + name + "'");
}

}  // namespace dbsim
}  // namespace llamatune
