#pragma once

#include <string>
#include <vector>

#include "src/common/status.h"

namespace llamatune {
namespace dbsim {

/// \brief Static description of one OLTP workload (paper Table 4 plus
/// the sensitivity profile that drives the performance model).
///
/// The sensitivity fields encode *which knob groups matter and how
/// much* for this workload — the mechanism by which the simulator
/// earns the paper's two structural premises: (i) low effective
/// dimensionality (each workload responds strongly to ~8-12 knobs) and
/// (ii) workload-dependent importance (so important-knob sets do not
/// transfer across workloads, Fig. 2b).
struct WorkloadSpec {
  std::string name;

  // --- Table 4 properties.
  int num_tables = 1;
  int num_columns = 11;
  double read_only_txn_fraction = 0.5;

  // --- Access pattern.
  double zipf_theta = 0.8;      ///< key-access skew (0 = uniform)
  double working_set_gb = 6.0;  ///< hot data size
  double db_size_gb = 20.0;     ///< paper: all databases are 20 GB
  double pages_per_txn = 4.0;   ///< heap+index pages touched per txn
  double rows_written = 1.0;    ///< rows modified per (write) txn
  double wal_kb_per_txn = 2.0;  ///< WAL volume per write txn

  // --- Cost profile.
  double base_cpu_ms = 0.5;       ///< pure CPU time per txn at default
  double contention = 0.1;        ///< row/lock conflict propensity [0,1]
  double planner_complexity = 0.0;  ///< join/plan sensitivity [0,1]
  double scan_fraction = 0.0;     ///< share of work in scans (parallel)

  // --- Knob-group sensitivities [0,1]-ish multipliers.
  double mem_sensitivity = 1.0;        ///< buffer pool / cache response
  double wal_sensitivity = 1.0;        ///< commit path response
  double writeback_sensitivity = 0.0;  ///< backend_flush_after response
  double vacuum_sensitivity = 0.5;     ///< autovacuum / bloat response

  // --- Execution setup (paper §6.1).
  int clients = 40;

  /// Calibration target: approximate throughput (req/s) of the default
  /// configuration, anchoring absolute numbers near the paper's plots.
  double default_throughput = 10000.0;
};

/// \name Workload factories (paper Table 4)
/// @{
WorkloadSpec YcsbA();     ///< 50/50 read-write key-value, zipfian
WorkloadSpec YcsbB();     ///< 95/5 read-heavy key-value, zipfian
WorkloadSpec TpcC();      ///< order processing, 9 tables, write-heavy
WorkloadSpec Seats();     ///< airline ticketing, 10 tables
WorkloadSpec Twitter();   ///< micro-blogging, 5 tables, skewed
WorkloadSpec ResourceStresser();  ///< synthetic CPU/IO/lock contention
/// @}

/// All six paper workloads in Table 4 order.
std::vector<WorkloadSpec> AllWorkloads();

/// Lookup by (case-sensitive) name: "YCSB-A", "YCSB-B", "TPC-C",
/// "SEATS", "Twitter", "RS".
Result<WorkloadSpec> WorkloadByName(const std::string& name);

}  // namespace dbsim
}  // namespace llamatune
