#pragma once

#include <string>
#include <vector>

namespace llamatune {
namespace dbsim {

/// Number of internal DBMS metrics exposed per run (paper §6.4: 27
/// system-wide PostgreSQL metrics feed the DDPG state).
inline constexpr int kNumMetrics = 27;

/// pg_stat-style names of the 27 metrics, in vector order.
const std::vector<std::string>& MetricNames();

/// \brief Raw per-run counters computed by the performance model;
/// flattened into the 27-metric state vector.
struct RunCounters {
  double throughput = 0.0;       // committed txns / sec
  double rollback_rate = 0.0;    // aborted txns / sec
  double blks_read_per_s = 0.0;  // buffer misses
  double blks_hit_per_s = 0.0;   // buffer hits
  double tup_returned_per_s = 0.0;
  double tup_fetched_per_s = 0.0;
  double tup_inserted_per_s = 0.0;
  double tup_updated_per_s = 0.0;
  double tup_deleted_per_s = 0.0;
  double conflicts_per_s = 0.0;
  double deadlocks_per_s = 0.0;
  double temp_files_per_s = 0.0;
  double temp_bytes_per_s = 0.0;
  double blk_read_time_ms_per_s = 0.0;
  double blk_write_time_ms_per_s = 0.0;
  double buffers_checkpoint_per_s = 0.0;
  double buffers_clean_per_s = 0.0;    // written by bgwriter
  double buffers_backend_per_s = 0.0;  // written by backends
  double checkpoints_timed_per_min = 0.0;
  double checkpoints_req_per_min = 0.0;
  double wal_bytes_per_s = 0.0;
  double wal_fsyncs_per_s = 0.0;
  double avg_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  double cpu_utilization = 0.0;
  double io_utilization = 0.0;
  double lock_wait_ms_per_s = 0.0;
};

/// Flattens counters into the 27-element state vector (order matches
/// MetricNames()), normalized to roughly unit scale for NN consumption.
std::vector<double> CountersToMetrics(const RunCounters& counters);

}  // namespace dbsim
}  // namespace llamatune
