#include "src/dbsim/perf_model.h"

#include <algorithm>
#include <cmath>

#include "src/common/math_util.h"

namespace llamatune {
namespace dbsim {

namespace {

// Simulated testbed constants beyond the public ones.
constexpr double kSsdIoServiceMs = 0.06;  // blended read/write op
constexpr double kOsCacheHitMs = 0.012;   // page read through OS cache
// Extra per-page CPU/copy cost of serving hot data from the OS page
// cache instead of shared_buffers (read() syscall + memcpy + buffer
// eviction churn). This is what makes shared_buffers sizing matter on
// a box whose RAM could hold the working set twice.
constexpr double kOsCachePenaltyMs = 0.05;
// Natural group commit: txns arriving during an in-flight WAL fsync
// piggyback on the next one.
constexpr double kNaturalBatchCoef = 0.15;
constexpr double kCommitDelayBatchCoef = 0.5;  // per ms of commit_delay
// Most of the commit delay overlaps with other backends' useful work.
constexpr double kCommitDelayLatencyShare = 0.15;
// WAL write bandwidth cost per KB (ms/kB at ~100 MB/s honored writes).
constexpr double kWalBandwidthMsPerKb = 0.02;

double SyncMethodFactor(const std::string& method) {
  if (method == "fsync") return 1.05;
  if (method == "open_datasync") return 1.15;
  if (method == "open_sync") return 1.30;
  return 1.0;  // fdatasync
}

}  // namespace

// --------------------------------------------------------------------
// Long-tail penalty: the few headline knobs carry most of the tuning
// headroom, but real DBMS spaces also expose dozens of minor knobs
// whose bad regions each cost a little (0.5-3%). Individually these
// effects sit below run-to-run noise, so a 100-sample high-dimensional
// model cannot isolate them; a random projection aggregates several
// minor knobs per synthetic dimension into a signal large enough to
// optimize. This is the low-effective-dimensionality structure the
// paper's techniques exploit — uniformly random configurations
// accumulate a substantial aggregate penalty, sane defaults almost
// none.
static double TailPenalty(const KnobView& k, const WorkloadSpec& w, bool v13) {
  double tail = 1.0;
  // frac: how deep into the bad region, in [0,1]; weight: max cost.
  auto pen = [&tail](double frac, double weight) {
    tail *= 1.0 + weight * Clamp(frac, 0.0, 1.0);
  };
  // One-sided log responses: most minor knobs hurt in one direction
  // and are roughly neutral in the other (oversized buffers waste a
  // little, undersized ones are fine, or vice versa). `high` penalizes
  // values above `good`, `low` penalizes below; span is in e-folds.
  auto high = [](double v, double good, double span) {
    if (v <= 0.0 || good <= 0.0) return 0.0;
    return std::max(0.0, std::log(v / good)) / span;
  };
  auto low = [](double v, double good, double span) {
    if (v <= 0.0) return 1.0;
    if (good <= 0.0) return 0.0;
    return std::max(0.0, std::log(good / v)) / span;
  };

  double p = w.planner_complexity;
  // Planner cost constants: inflated CPU costs bias toward bad plans.
  pen(high(k.Get("cpu_tuple_cost", 0.01), 0.02, 4.0), 0.02 * (0.3 + p));
  pen(high(k.Get("cpu_index_tuple_cost", 0.005), 0.01, 4.0),
      0.015 * (0.3 + p));
  pen(high(k.Get("cpu_operator_cost", 0.0025), 0.005, 4.0),
      0.015 * (0.3 + p));
  // Undervalued sequential reads push index plans onto cold paths.
  pen(low(k.Get("seq_page_cost", 1.0), 0.5, 2.0), 0.015 * (0.3 + p));
  // A pessimistic cache estimate scares the planner away from indexes.
  pen(low(k.Get("effective_cache_size", 524288), 131072, 3.0),
      0.02 * (0.3 + p));
  // Spurious deadlock checks when the timeout is far below real waits.
  pen(low(k.Get("deadlock_timeout", 1000), 200, 4.0), 0.02 * w.contention);
  // Oversized per-session temp buffers waste memory bandwidth.
  pen(k.Get("temp_buffers", 1024) / 131072.0, 0.015);
  // Tiny file quota forces reopen churn.
  pen(low(k.Get("max_files_per_process", 1000), 500, 2.5), 0.02);
  // Unused prepared-transaction slots cost shared memory scans.
  pen(k.Get("max_prepared_transactions", 0) / 1000.0, 0.015);
  pen(k.Get("max_locks_per_transaction", 64) / 1024.0, 0.01);
  pen(k.Get("max_pred_locks_per_transaction", 64) / 1024.0, 0.01);
  // Overweighted vacuum page costs starve vacuum progress.
  pen(high(k.Get("vacuum_cost_page_hit", 1), 4.0, 3.0),
      0.015 * w.vacuum_sensitivity);
  pen(high(k.Get("vacuum_cost_page_miss", 10), 20.0, 1.5),
      0.015 * w.vacuum_sensitivity);
  pen(high(k.Get("vacuum_cost_page_dirty", 20), 40.0, 0.7),
      0.015 * w.vacuum_sensitivity);
  pen(low(k.Get("vacuum_freeze_min_age", 5e7), 1e6, 5.0), 0.01);
  pen(low(k.Get("vacuum_freeze_table_age", 1.5e8), 3e6, 5.0), 0.01);
  // Aggressive anti-wraparound scans when the max age is tiny.
  pen(low(k.Get("autovacuum_freeze_max_age", 2e8), 2e7, 3.0),
      0.02 * w.vacuum_sensitivity);
  pen(high(k.Get("autovacuum_analyze_threshold", 50), 2000, 1.6), 0.01);
  pen(high(k.Get("autovacuum_vacuum_threshold", 50), 2000, 1.6),
      0.01 * w.vacuum_sensitivity);
  pen(k.Get("autovacuum_max_workers", 3) / 20.0, 0.01);  // worker overhead
  // GEQO mistuning on plan-heavy workloads.
  pen(low(k.Get("geqo_effort", 5), 3, 1.2), 0.015 * p);
  pen(k.Get("geqo_generations", 0) / 1000.0, 0.01 * p);
  pen(low(k.Get("geqo_threshold", 12), 6, 1.2), 0.01 * p);
  pen(high(k.Get("from_collapse_limit", 8), 20, 1.2), 0.01 * p);
  pen(high(k.Get("join_collapse_limit", 8), 20, 1.2), 0.01 * p);
  pen(Clamp(k.Get("cursor_tuple_fraction", 0.1) - 0.3, 0.0, 1.0) / 0.7,
      0.01 * p);
  pen(low(k.Get("default_statistics_target", 100), 25, 3.0),
      0.015 * (0.2 + p));
  // WAL writer pacing: a sleepy writer delays async durability work.
  pen(high(k.Get("wal_writer_delay", 200), 1000, 2.5),
      0.015 * (1.0 - w.read_only_txn_fraction));
  pen(high(k.Get("bgwriter_delay", 200), 1000, 2.5),
      0.01 * (1.0 - w.read_only_txn_fraction));
  pen(low(k.Get("min_wal_size", 80), 40, 1.0), 0.005);
  pen(low(k.Get("gin_pending_list_limit", 4096), 256, 3.0), 0.005);
  pen(k.Get("gin_fuzzy_search_limit", 0) / 1000000.0, 0.005);
  pen(low(k.Get("maintenance_work_mem", 65536), 8192, 2.5),
      0.01 * w.vacuum_sensitivity);
  pen(low(k.Get("max_stack_depth", 2048), 512, 1.5), 0.005);
  // Parallel cost constants only matter once parallelism is on.
  double workers = k.Get("max_parallel_workers_per_gather", 0);
  if (workers > 0) {
    pen(low(std::max(k.Get("parallel_setup_cost", 1000), 1.0), 100, 3.0),
        0.01);
    pen(low(std::max(k.Get("parallel_tuple_cost", 0.1), 0.001), 0.01, 3.0),
        0.01);
    pen(low(k.Get("min_parallel_relation_size", 1024), 64, 3.0), 0.005);
  }
  if (v13) {
    pen(low(k.Get("logical_decoding_work_mem", 65536), 4096, 3.0), 0.005);
    pen(high(k.Get("wal_skip_threshold", 2048), 65536, 3.0), 0.005);
    pen(k.Get("wal_keep_size", 0) / 65536.0, 0.01);
    if (!k.GetBool("wal_init_zero", true)) pen(1.0, 0.005);
    if (!k.GetBool("wal_recycle", true)) pen(1.0, 0.01);
    pen(low(k.Get("hash_mem_multiplier", 1.0), 0.5, 1.0), 0.01 * p);
    pen(high(k.Get("autovacuum_vacuum_insert_scale_factor", 0.2), 0.5, 0.7),
        0.01 * w.vacuum_sensitivity);
  }
  return tail;
}

double KnobView::Get(const std::string& name, double fallback) const {
  int idx = space_->IndexOf(name);
  if (idx < 0 || idx >= config_->size()) return fallback;
  return (*config_)[idx];
}

std::string KnobView::GetCategory(const std::string& name) const {
  int idx = space_->IndexOf(name);
  if (idx < 0 || idx >= config_->size()) return "";
  const KnobSpec& spec = space_->knob(idx);
  if (spec.type != KnobType::kCategorical) return "";
  int cat = static_cast<int>((*config_)[idx]);
  if (cat < 0 || cat >= static_cast<int>(spec.categories.size())) return "";
  return spec.categories[cat];
}

bool KnobView::GetBool(const std::string& name, bool fallback) const {
  std::string cat = GetCategory(name);
  if (cat.empty()) return fallback;
  return cat == "on";
}

bool KnobView::Has(const std::string& name) const {
  return space_->IndexOf(name) >= 0;
}

PerfModel::PerfModel(const ConfigSpace* space, WorkloadSpec workload,
                     PostgresVersion version)
    : space_(space), workload_(std::move(workload)), version_(version) {
  // Calibrate so that the default configuration lands on the
  // workload's default-throughput anchor (absolute numbers near the
  // paper's plots; the response *shape* is what the model earns).
  Configuration def = space_->DefaultConfiguration();
  LatencyBreakdown breakdown = ComputeLatency(def);
  if (!breakdown.crashed && breakdown.total_ms > 0.0) {
    double desired_latency_ms =
        static_cast<double>(workload_.clients) * 1000.0 /
        workload_.default_throughput;
    time_scale_ = desired_latency_ms / breakdown.total_ms;
  }
}

PerfModel::LatencyBreakdown PerfModel::ComputeLatency(
    const Configuration& config) const {
  LatencyBreakdown out;
  KnobView k(space_, &config);
  const WorkloadSpec& w = workload_;
  const bool v13 = version_ == PostgresVersion::kV136;

  // ------------------------------------------------ memory & crashes
  double sb_gb = k.Get("shared_buffers", 16384) * 8.0 / (1024.0 * 1024.0);
  double wm_mb = k.Get("work_mem", 4096) / 1024.0;
  double hash_mult = v13 ? k.Get("hash_mem_multiplier", 1.0) : 1.0;
  double per_client_gb =
      wm_mb * (0.3 + w.planner_complexity) * (0.5 + 0.5 * hash_mult) / 1024.0;
  double mem_needed_gb = sb_gb + w.clients * per_client_gb * 0.5 + 0.6;
  if (mem_needed_gb > kRamGb - 0.8) {
    out.crashed = true;
    out.crash_reason = "out of memory (shared_buffers + work_mem)";
    return out;
  }
  if (k.Get("max_connections", 100) < w.clients) {
    out.crashed = true;
    out.crash_reason = "max_connections below client count";
    return out;
  }
  if (k.Get("max_locks_per_transaction", 64) < w.num_tables + 4) {
    out.crashed = true;
    out.crash_reason = "lock table exhausted";
    return out;
  }
  if (k.Get("max_files_per_process", 1000) < 50 && w.num_tables >= 9) {
    out.crashed = true;
    out.crash_reason = "too many open files";
    return out;
  }

  // ------------------------------------------------------ CPU / plan
  double p = w.planner_complexity;
  double base_cpu = w.base_cpu_ms * (v13 ? 0.92 : 1.0);
  double planner_factor = 1.0;
  if (!k.GetBool("enable_hashjoin", true)) planner_factor += 0.30 * p;
  if (!k.GetBool("enable_mergejoin", true)) planner_factor += 0.15 * p;
  if (!k.GetBool("enable_nestloop", true)) planner_factor += 0.20 * p;
  if (!k.GetBool("enable_indexscan", true)) planner_factor += 0.5 * (0.3 + p);
  if (!k.GetBool("enable_indexonlyscan", true)) planner_factor += 0.05;
  if (!k.GetBool("enable_bitmapscan", true)) planner_factor += 0.05 * p;
  if (!k.GetBool("enable_hashagg", true)) planner_factor += 0.08 * p;
  if (!k.GetBool("enable_sort", true)) planner_factor += 0.10 * p;
  if (!k.GetBool("enable_material", true)) planner_factor += 0.04 * p;
  if (!k.GetBool("enable_tidscan", true)) planner_factor += 0.01;
  if (!k.GetBool("enable_seqscan", true)) {
    planner_factor += 0.15 * w.scan_fraction - 0.02 * (1.0 - p);
  }

  // GEQO: join-order search quality for many-table plans, with a
  // small global selection-bias effect (stray complex queries exist
  // even in simple workloads).
  double bias = k.Get("geqo_selection_bias", 2.0);
  planner_factor += 0.03 * (0.2 + p) * (bias - 1.5) / 0.5;
  if (p > 0.3) {
    bool geqo_on = k.GetBool("geqo", true);
    if (!geqo_on && w.num_tables >= 8) planner_factor += 0.06 * p;
    double pool = k.Get("geqo_pool_size", 0);
    if (geqo_on && pool != 0.0) {
      if (pool < 50) planner_factor += 0.05 * p;      // degenerate pool
      else if (pool > 500) planner_factor += 0.02 * p;  // planning time
    }
  }
  double collapse = std::min(k.Get("join_collapse_limit", 8),
                             k.Get("from_collapse_limit", 8));
  planner_factor += 0.08 * p * std::max(0.0, (4.0 - collapse) / 3.0);
  double dst = k.Get("default_statistics_target", 100);
  planner_factor += 0.06 * p * std::max(0.0, (20.0 - dst) / 20.0);
  if (dst > 5000) planner_factor += 0.01;
  double rpc = k.Get("random_page_cost", 4.0);
  planner_factor += 0.05 * (0.3 + p) * std::abs(rpc - 1.5) / 8.5;

  // Stale statistics: analyze lag grows with the scale factor and the
  // write rate.
  double asf = k.Get("autovacuum_analyze_scale_factor", 0.1);
  double write_frac = 1.0 - w.read_only_txn_fraction;
  double stale = asf / (asf + 0.08);
  if (!k.GetBool("autovacuum", true)) stale = 1.0;
  planner_factor += (0.10 * p + 0.03) * stale * write_frac;

  if (k.GetCategory("huge_pages") == "on" && sb_gb > 4.0) {
    planner_factor -= 0.015;
  }

  // JIT (v13.6): compile overhead on short OLTP queries when the cost
  // threshold is set low; -1 (special) disables JIT entirely.
  if (v13 && k.Has("jit") && k.GetBool("jit", true)) {
    double jit_above = k.Get("jit_above_cost", 100000);
    if (jit_above >= 0 && jit_above < 200000) {
      planner_factor += 0.08 * (1.0 - p) * (1.0 - jit_above / 200000.0);
      planner_factor -= 0.03 * p * w.scan_fraction;
    }
  }

  // work_mem spills.
  double needed_mb = (2.0 + 30.0 * p) / (0.5 + 0.5 * hash_mult);
  double spill = std::max(0.0, 1.0 - wm_mb / needed_mb);
  out.spill_fraction = spill * (0.2 + p);

  double cpu_ms = base_cpu * planner_factor + p * 1.2 * base_cpu * spill;

  // Parallel query: helps the scan fraction, costs setup on pure OLTP.
  double workers = std::min(k.Get("max_parallel_workers_per_gather", 0),
                            k.Get("max_worker_processes", 8));
  if (v13) workers = std::min(workers, k.Get("max_parallel_workers", 8));
  if (workers > 0) {
    double scan_cpu = base_cpu * planner_factor * w.scan_fraction;
    double rest = cpu_ms - scan_cpu;
    double speedup = 1.0 + 0.55 * std::min(workers, 8.0) *
                               (v13 ? 1.0 : 0.7);
    cpu_ms = rest + scan_cpu / speedup +
             0.012 * base_cpu * std::min(workers, 8.0) * (1.0 - w.scan_fraction);
  }

  // ------------------------------------------------------- IO (base)
  double os_cache_gb = std::max(0.5, kRamGb - mem_needed_gb - 0.5);
  double expo = std::max(0.12, 1.0 - w.zipf_theta);
  double pg_cov = Clamp(sb_gb / w.working_set_gb, 0.0, 1.0);
  double total_cov =
      Clamp((sb_gb + 0.55 * os_cache_gb) / w.working_set_gb, 0.0, 1.0);
  double pg_hit = pg_cov > 0 ? std::pow(pg_cov, expo) : 0.0;
  double total_hit = total_cov > 0 ? std::pow(total_cov, expo) : 0.0;
  total_hit = std::max(total_hit, pg_hit);
  double os_hit = total_hit - pg_hit;
  double miss = 1.0 - total_hit;
  out.buffer_hit_rate = pg_hit;

  double eic = k.Get("effective_io_concurrency", 1);
  double prefetch = 1.0;
  if (eic >= 1.0) {
    prefetch = 1.0 + 0.12 * std::log2(1.0 + std::min(eic, 64.0));
  }
  double spill_io_per_txn = out.spill_fraction * 6.0;
  double io_ms_base =
      w.mem_sensitivity * w.pages_per_txn *
          (miss * kPageReadMs / prefetch +
           os_hit * (kOsCacheHitMs + kOsCachePenaltyMs)) +
      spill_io_per_txn * kSsdIoServiceMs;

  // temp_file_limit: a finite limit below the spill volume aborts the
  // queries that spill.
  double tfl = k.Get("temp_file_limit", -1);
  if (tfl != -1 && out.spill_fraction > 0.2 && p > 0.3 && tfl < 51200) {
    out.crashed = true;
    out.crash_reason = "temp_file_limit exceeded";
    return out;
  }

  // --------------------------------------------------------- vacuum
  double bloat = 0.0;
  double vac_io_per_txn = 0.0;
  double vs = w.vacuum_sensitivity;
  if (!k.GetBool("autovacuum", true)) {
    // No vacuuming at all: dead tuples accumulate for the whole run,
    // strictly worse than even a heavily throttled autovacuum.
    bloat = 0.7 * vs;
  } else {
    double sf = k.Get("autovacuum_vacuum_scale_factor", 0.2);
    bloat = 0.35 * vs * sf / (sf + 0.04);
    double naptime = k.Get("autovacuum_naptime", 60);
    bloat += 0.05 * vs * naptime / 3600.0;
    if (k.Get("autovacuum_max_workers", 3) < 2 && w.num_tables >= 9) {
      bloat *= 1.15;
    }
    double aggressiveness = 0.04 / (sf + 0.04);
    double cl = k.Get("autovacuum_vacuum_cost_limit", -1);
    if (cl == -1) cl = k.Get("vacuum_cost_limit", 200);
    double cd = k.Get("autovacuum_vacuum_cost_delay", v13 ? 2 : 20);
    if (cd == -1) cd = k.Get("vacuum_cost_delay", 0);
    // Cost-based throttling slows vacuum down; dead tuples linger.
    // The -1 specials (inherit the unthrottled manual-vacuum settings)
    // are the fast path here — the hybrid-knob effect SVB surfaces.
    bloat *= 1.0 + 0.5 * cd / (cd + 5.0);
    bloat *= 1.0 + 0.3 * std::max(0.0, 1.0 - cl / 1000.0);
    double vac_intensity =
        aggressiveness * std::min(1.0, cl / 2000.0) * (2.0 / (2.0 + cd));
    double avwm = k.Get("autovacuum_work_mem", -1);
    if (avwm == -1) avwm = k.Get("maintenance_work_mem", 65536);
    double passes = avwm < 16384 ? 1.5 : 1.0;
    vac_io_per_txn = vs * write_frac * 1.2 * vac_intensity * passes;
  }
  // Insert-driven vacuums (v13) shave a little bloat on insert-heavy
  // workloads.
  if (v13 && k.Get("autovacuum_vacuum_insert_threshold", 1000) != -1) {
    bloat *= 0.95;
  }

  // --------------------------------------------- WAL statics per txn
  double wal_kb = w.wal_kb_per_txn;
  if (k.GetBool("wal_compression", false)) {
    wal_kb *= 0.65;
    cpu_ms += 0.02 * write_frac * base_cpu;
  }
  if (k.GetBool("wal_log_hints", false)) wal_kb *= 1.15;
  bool fpw = k.GetBool("full_page_writes", true);
  double sync_factor = SyncMethodFactor(k.GetCategory("wal_sync_method"));
  double fsync_ms = kFsyncMs * sync_factor;
  std::string sync_commit = k.GetCategory("synchronous_commit");
  bool sc_off = sync_commit == "off" || sync_commit == "local";
  double commit_delay_ms = k.Get("commit_delay", 0) / 1000.0;
  double commit_siblings = k.Get("commit_siblings", 5);

  // wal_buffers: -1 selects shared_buffers/32 clamped to [64kB, 16MB].
  double wb_pages = k.Get("wal_buffers", -1);
  if (wb_pages == -1) {
    wb_pages = Clamp(k.Get("shared_buffers", 16384) / 32.0, 8.0, 2048.0);
  }
  double wb_kb = wb_pages * 8.0;

  // ----------------------------------------------- backend writeback
  double bfa = k.Get("backend_flush_after", 0);
  double wb_sens = w.writeback_sensitivity * (v13 ? 0.45 : 1.0);
  if (bfa == 0.0) {
    out.writeback_ms = 0.0;
    out.spike_factor += 0.15 * wb_sens;  // unthrottled bursts hit p95
  } else {
    out.writeback_ms = wb_sens * 0.38 * (24.0 / (24.0 + bfa));
  }
  double bg_lru = k.Get("bgwriter_lru_maxpages", 100);
  double bg_delay = k.Get("bgwriter_delay", 200);
  double bg_mult = k.Get("bgwriter_lru_multiplier", 2.0);
  double bg_quality =
      bg_lru <= 0.0
          ? 0.0
          : Clamp(bg_lru * (0.5 + 0.25 * bg_mult) / bg_delay / 1.5, 0.0, 1.0);
  out.writeback_ms += 0.05 * write_frac * (1.0 - bg_quality) *
                      (0.3 + w.writeback_sensitivity);
  if (k.Get("bgwriter_flush_after", 64) == 0.0) out.spike_factor += 0.02;
  if (k.Get("checkpoint_flush_after", 32) == 0.0) out.spike_factor += 0.05;

  // Minor long-tail knobs.
  if (k.Get("old_snapshot_threshold", -1) != -1) cpu_ms *= 1.01;
  if (!v13 && k.Get("replacement_sort_tuples", 150000) == 0.0 && p > 0.3) {
    cpu_ms *= 1.005;
  }

  // ------------------------------------------------- lock contention
  // Conflicting transactions wait roughly for the holder's execution,
  // so the expected wait scales with the base transaction duration.
  double lock_ms = 1.2 * w.contention * write_frac * base_cpu *
                   (static_cast<double>(w.clients) / 40.0);
  double deadlock_timeout_ms = k.Get("deadlock_timeout", 1000);
  out.spike_factor +=
      0.3 * w.contention * std::pow(deadlock_timeout_ms / 1000.0, 0.3) *
      write_frac;
  out.abort_fraction = 0.03 * w.contention * write_frac;

  // --------------------------------------------- closed-loop solve
  double max_wal_mb = k.Get("max_wal_size", 1024);
  double ckpt_timeout_s = k.Get("checkpoint_timeout", 300);
  double cct = k.Get("checkpoint_completion_target", 0.5);

  double tail = TailPenalty(k, w, v13);
  double base_const_ms = 0.1 * base_cpu;  // parse/protocol floor
  double latency = cpu_ms + io_ms_base + fsync_ms * write_frac + lock_ms +
                   out.writeback_ms + base_const_ms;
  double wal_latency = 0.0, io_latency = io_ms_base;
  double wal_kb_eff = wal_kb;
  double ckpt_per_min = 0.0, ckpt_req_per_min = 0.0, ckpt_spike = 0.0;
  double ckpt_io_per_txn = 0.0;
  double batch = 1.0;

  // Fixed point over the throughput-dependent effects: natural group
  // commit grows with the commit rate, checkpoint cadence grows with
  // the WAL production rate, and full-page writes feed back into WAL
  // volume. Damped iteration converges in a handful of steps.
  for (int it = 0; it < 24; ++it) {
    double x = static_cast<double>(w.clients) / latency;  // txn per ms
    double committers = x * write_frac;

    // Checkpoint cadence from WAL volume vs max_wal_size and timeout.
    double wal_mb_per_min =
        x * 1000.0 * 60.0 * write_frac * wal_kb_eff / 1024.0;
    ckpt_req_per_min = wal_mb_per_min / std::max(max_wal_mb, 32.0);
    double ckpt_timed_per_min = 60.0 / ckpt_timeout_s;
    ckpt_per_min = std::max(ckpt_req_per_min, ckpt_timed_per_min);
    // Full-page writes inflate WAL right after each checkpoint.
    wal_kb_eff =
        wal_kb *
        (1.0 + (fpw ? 2.2 * Clamp(ckpt_per_min / 1.5, 0.0, 1.0) : 0.0));
    // Checkpoint flush work: dirty share of the buffer pool per cycle.
    double dirty_gb =
        std::min(sb_gb * 0.5,
                 wal_mb_per_min / std::max(ckpt_per_min, 0.05) / 1024.0);
    double ckpt_pages_per_ms =
        dirty_gb * 1024.0 * 128.0 * ckpt_per_min / 60000.0;
    ckpt_io_per_txn = x > 0 ? ckpt_pages_per_ms / x : 0.0;
    ckpt_spike = (1.0 - 0.85 * cct) * Clamp(ckpt_per_min / 2.0, 0.0, 1.0) *
                 (fpw ? 1.2 : 0.8) * write_frac;

    // WAL flush path: natural group commit + commit_delay batching.
    batch = 1.0 + committers * fsync_ms * kNaturalBatchCoef;
    double delay_added = 0.0;
    if (commit_delay_ms > 0.0 && committers * latency > commit_siblings) {
      batch += committers * std::min(commit_delay_ms, 5.0) *
               kCommitDelayBatchCoef;
      delay_added = commit_delay_ms * kCommitDelayLatencyShare;
    }
    double buffer_stall =
        0.3 * fsync_ms *
        std::max(0.0,
                 1.0 - wb_kb / std::max(wal_kb_eff * committers * latency,
                                        1.0));
    // Async commit piggybacks on the WAL writer's cadence; at extreme
    // commit rates natural group commit batches at least as well, so
    // asynchronous commit never loses to synchronous commit.
    double wal_service = sc_off
                             ? std::min(fsync_ms * 0.06,
                                        0.5 * fsync_ms / batch)
                             : fsync_ms / batch;
    // With async commit the WAL writer's flush cadence matters.
    if (sc_off) {
      double wwfa = k.Get("wal_writer_flush_after", 128);
      if (wwfa == 0.0) wal_service *= 1.8;
    }
    double wal_bytes_ms = wal_kb_eff * kWalBandwidthMsPerKb;
    wal_latency = w.wal_sensitivity * write_frac *
                  (wal_service + buffer_stall + wal_bytes_ms + delay_added);

    // Disk time: reads/spills plus background vacuum and checkpoint
    // writes that steal device time from foreground work.
    io_latency = io_ms_base +
                 (vac_io_per_txn + ckpt_io_per_txn * 0.5) * kSsdIoServiceMs;

    double bloat_mult = 1.0 + bloat;
    // Frequent, bursty checkpoints also depress mean throughput.
    double ckpt_mult = 1.0 + 0.2 * ckpt_spike;
    double new_latency = (cpu_ms + io_latency + wal_latency + lock_ms +
                          out.writeback_ms + base_const_ms) *
                         bloat_mult * ckpt_mult * tail;
    latency = 0.5 * latency + 0.5 * new_latency;
  }

  out.cpu_ms = cpu_ms;
  out.io_ms = io_latency;
  out.wal_ms = wal_latency;
  out.lock_ms = lock_ms;
  out.vacuum_ms = latency * bloat / (1.0 + bloat);
  out.checkpoint_ms = ckpt_io_per_txn * kSsdIoServiceMs;
  out.total_ms = latency;
  out.spike_factor += ckpt_spike * 2.2;
  out.wal_kb_per_txn = wal_kb_eff;
  out.wal_fsyncs_per_txn = sc_off ? 0.06 : write_frac / batch;
  out.checkpoints_per_min = ckpt_per_min;
  out.checkpoints_req_per_min = ckpt_req_per_min;
  return out;
}

ModelOutput PerfModel::Assemble(const LatencyBreakdown& b,
                                double throughput) const {
  ModelOutput out;
  out.throughput = throughput;
  out.avg_latency_ms = b.total_ms * time_scale_;
  out.p95_latency_ms = out.avg_latency_ms * (1.7 + b.spike_factor);

  const WorkloadSpec& w = workload_;
  RunCounters& c = out.counters;
  double x = throughput;  // txn/s
  c.throughput = x * (1.0 - b.abort_fraction);
  c.rollback_rate = x * b.abort_fraction;
  double pages_s = x * w.pages_per_txn;
  c.blks_hit_per_s = pages_s * b.buffer_hit_rate;
  c.blks_read_per_s = pages_s * (1.0 - b.buffer_hit_rate);
  c.tup_returned_per_s = x * w.pages_per_txn * 20.0;
  c.tup_fetched_per_s = x * w.pages_per_txn * 4.0;
  double wf = 1.0 - w.read_only_txn_fraction;
  c.tup_inserted_per_s = x * wf * w.rows_written * 0.4;
  c.tup_updated_per_s = x * wf * w.rows_written * 0.5;
  c.tup_deleted_per_s = x * wf * w.rows_written * 0.1;
  c.conflicts_per_s = x * w.contention * wf * 0.1;
  c.deadlocks_per_s = x * w.contention * wf * 0.001;
  c.temp_files_per_s = x * b.spill_fraction * 0.2;
  c.temp_bytes_per_s = c.temp_files_per_s * 8.0 * 1024 * 1024;
  c.blk_read_time_ms_per_s = x * b.io_ms;
  c.blk_write_time_ms_per_s = x * (b.writeback_ms + b.checkpoint_ms);
  c.buffers_checkpoint_per_s = x * b.checkpoint_ms / kSsdIoServiceMs;
  c.buffers_clean_per_s = x * wf * w.rows_written * 0.3;
  c.buffers_backend_per_s = x * wf * w.rows_written * 0.2;
  c.checkpoints_timed_per_min =
      std::max(0.0, b.checkpoints_per_min - b.checkpoints_req_per_min);
  c.checkpoints_req_per_min = b.checkpoints_req_per_min;
  c.wal_bytes_per_s = x * wf * b.wal_kb_per_txn * 1024.0;
  c.wal_fsyncs_per_s = x * b.wal_fsyncs_per_txn;
  c.avg_latency_ms = out.avg_latency_ms;
  c.p95_latency_ms = out.p95_latency_ms;
  c.cpu_utilization = Clamp(x * b.cpu_ms / 1000.0 / kNumCores, 0.0, 1.0);
  c.io_utilization = Clamp(
      x * (b.io_ms + b.checkpoint_ms) / 1000.0, 0.0, 1.0);
  c.lock_wait_ms_per_s = x * b.lock_ms;
  return out;
}

ModelOutput PerfModel::Run(const Configuration& config) const {
  LatencyBreakdown b = ComputeLatency(config);
  if (b.crashed) {
    ModelOutput out;
    out.crashed = true;
    out.crash_reason = b.crash_reason;
    return out;
  }
  double latency_ms = b.total_ms * time_scale_;
  double throughput = static_cast<double>(workload_.clients) * 1000.0 /
                      latency_ms;
  return Assemble(b, throughput);
}

ModelOutput PerfModel::RunAtFixedRate(const Configuration& config,
                                      double requests_per_second) const {
  LatencyBreakdown b = ComputeLatency(config);
  if (b.crashed) {
    ModelOutput out;
    out.crashed = true;
    out.crash_reason = b.crash_reason;
    return out;
  }
  double latency_ms = b.total_ms * time_scale_;
  double max_throughput =
      static_cast<double>(workload_.clients) * 1000.0 / latency_ms;
  ModelOutput out = Assemble(b, std::min(requests_per_second, max_throughput));
  double rho = requests_per_second / max_throughput;
  if (rho >= 0.98) {
    // Overloaded: queues grow for the whole run.
    out.p95_latency_ms = out.avg_latency_ms * 25.0;
    out.avg_latency_ms *= 8.0;
  } else {
    double queue = 1.0 + 0.6 * rho / (1.0 - rho);
    out.avg_latency_ms *= (0.75 + 0.25 * queue);
    out.p95_latency_ms =
        out.avg_latency_ms * (1.55 + b.spike_factor) * queue;
  }
  out.counters.avg_latency_ms = out.avg_latency_ms;
  out.counters.p95_latency_ms = out.p95_latency_ms;
  return out;
}

}  // namespace dbsim
}  // namespace llamatune
