#include <algorithm>

#include "src/dbsim/knob_catalog.h"
#include "src/dbsim/knob_catalog_internal.h"

namespace llamatune {
namespace dbsim {

ConfigSpace PostgresV136Catalog() {
  std::vector<KnobSpec> knobs = internal::BaseV96Knobs();

  // replacement_sort_tuples was removed in PostgreSQL 11.
  knobs.erase(std::remove_if(knobs.begin(), knobs.end(),
                             [](const KnobSpec& spec) {
                               return spec.name == "replacement_sort_tuples";
                             }),
              knobs.end());

  // commit_delay = 0 disables the group-commit delay entirely; treated
  // as a hybrid knob in the newer catalog (paper §6.3: re-characterize
  // hybrid knobs when porting versions).
  for (KnobSpec& spec : knobs) {
    if (spec.name == "commit_delay") {
      spec.special_values = {0};
    }
    // v13 default for checkpoint_completion_target related tuning was
    // unchanged (0.5); autovacuum_vacuum_cost_delay default dropped to
    // 2ms in v12+.
    if (spec.name == "autovacuum_vacuum_cost_delay") {
      spec.default_value = 2;
    }
    // Parallel query is on by default since v10.
    if (spec.name == "max_parallel_workers_per_gather") {
      spec.default_value = 2;
    }
  }

  auto add = [&](KnobSpec spec, const char* unit = "") {
    spec.unit = unit;
    knobs.push_back(std::move(spec));
  };

  // ------------------------------------------------------------ JIT
  add(BoolKnob("jit", true, "Allow JIT compilation of expressions"));
  add(WithSpecialValues(
          WithLogScale(RealKnob("jit_above_cost", -1, 10000000, 100000,
                                "Query cost above which JIT is used; "
                                "-1 disables JIT compilation")),
          {-1}));
  add(WithSpecialValues(
          WithLogScale(RealKnob("jit_inline_above_cost", -1, 10000000,
                                500000,
                                "Query cost above which JIT inlines "
                                "functions; -1 disables inlining")),
          {-1}));
  add(WithSpecialValues(
          WithLogScale(RealKnob("jit_optimize_above_cost", -1, 10000000,
                                500000,
                                "Query cost above which JIT applies "
                                "expensive optimizations; -1 disables")),
          {-1}));

  // ------------------------------------------------- parallel query
  add(IntegerKnob("max_parallel_workers", 0, 64, 8,
                  "Maximum parallel workers active at one time"));
  add(IntegerKnob("max_parallel_maintenance_workers", 0, 64, 2,
                  "Parallel workers per maintenance operation"));
  add(BoolKnob("parallel_leader_participation", true,
               "Leader also executes the parallel plan subtree"));
  add(BoolKnob("enable_parallel_hash", true, "Allow parallel hash joins"));
  add(BoolKnob("enable_parallel_append", true, "Allow parallel appends"));
  add(BoolKnob("enable_partitionwise_join", false,
               "Allow partitionwise join"));
  add(BoolKnob("enable_partitionwise_aggregate", false,
               "Allow partitionwise aggregation"));
  add(BoolKnob("enable_gathermerge", true, "Allow gather-merge plans"));
  add(BoolKnob("enable_incremental_sort", true,
               "Allow incremental sort steps"));

  // --------------------------------------------------------- memory
  add(RealKnob("hash_mem_multiplier", 1.0, 64.0, 1.0,
               "Multiple of work_mem usable by hash tables"));
  add(WithLogScale(IntegerKnob("logical_decoding_work_mem", 64, 2097152,
                               65536,
                               "Memory per logical decoding session "
                               "before spilling")),
      "kB");

  // ------------------------------------------------------------ I/O
  add(WithSpecialValues(
          IntegerKnob("maintenance_io_concurrency", 0, 1000, 10,
                      "Prefetch depth for maintenance work; 0 disables "
                      "prefetching"),
          {0}));

  // ------------------------------------------------------------ WAL
  add(BoolKnob("wal_init_zero", true, "Zero-fill new WAL files"));
  add(BoolKnob("wal_recycle", true, "Recycle WAL files by renaming"));
  add(WithLogScale(IntegerKnob("wal_skip_threshold", 1, 1048576, 2048,
                               "Size below which new-relation data is "
                               "WAL-logged instead of fsynced at "
                               "commit")),
      "kB");
  add(WithSpecialValues(
          IntegerKnob("max_slot_wal_keep_size", -1, 65536, -1,
                      "WAL kept for replication slots; -1 means "
                      "unlimited"),
          {-1}),
      "MB");
  add(IntegerKnob("wal_keep_size", 0, 65536, 0,
                  "WAL kept for standby servers"),
      "MB");

  // ----------------------------------------------------- autovacuum
  add(WithSpecialValues(
          IntegerKnob("autovacuum_vacuum_insert_threshold", -1, 10000, 1000,
                      "Inserted tuples before vacuum; -1 disables "
                      "insert-driven vacuums"),
          {-1}));
  add(RealKnob("autovacuum_vacuum_insert_scale_factor", 0.0, 1.0, 0.2,
               "Fraction of inserts over table size before vacuum"));

  return ConfigSpace::Create(std::move(knobs)).ValueOrDie();
}

}  // namespace dbsim
}  // namespace llamatune
