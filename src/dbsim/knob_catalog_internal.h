#pragma once

#include <vector>

#include "src/knobs/knob.h"

namespace llamatune {
namespace dbsim {
namespace internal {

/// The v9.6 knob list (shared base for the v13.6 catalog).
std::vector<KnobSpec> BaseV96Knobs();

}  // namespace internal
}  // namespace dbsim
}  // namespace llamatune
