#pragma once

#include <cstdint>
#include <memory>

#include "src/core/objective.h"
#include "src/dbsim/knob_catalog.h"
#include "src/dbsim/perf_model.h"
#include "src/dbsim/workloads.h"

namespace llamatune {
namespace dbsim {

/// \brief What the tuning session optimizes (paper §6.1: throughput by
/// default; §6.2 also tunes 95th-percentile latency at a fixed rate).
enum class TuningTarget { kThroughput, kP95Latency };

/// \brief How workload runs are produced.
enum class EngineKind {
  /// Closed-form analytic model (fast; lognormal run noise).
  kAnalytic,
  /// Discrete-event simulation layered on the analytic rates: tail
  /// latency and noise are measured from sampled transactions.
  kDiscreteEvent,
};

/// \brief Options for a simulated DBMS instance.
struct SimulatedPostgresOptions {
  PostgresVersion version = PostgresVersion::kV96;
  TuningTarget target = TuningTarget::kThroughput;
  EngineKind engine = EngineKind::kAnalytic;
  /// Transactions per discrete-event run (engine == kDiscreteEvent).
  int des_transactions = 20000;
  /// Fixed request rate for the latency target (req/s); ignored for
  /// throughput tuning. The paper sets this to half the best observed
  /// throughput per workload.
  double fixed_rate = 0.0;
  /// Multiplicative lognormal run-to-run noise (sigma of log). 0
  /// disables noise (useful in tests).
  double noise_sigma = 0.03;
  /// Base seed for per-evaluation noise.
  uint64_t noise_seed = 7;
};

/// \brief The simulated PostgreSQL + workload driver: the paper's
/// testing environment (Fig. 1, green-shaded area) as an
/// ObjectiveFunction.
///
/// Deterministic given (options.noise_seed, evaluation order): noise
/// for the i-th evaluation of a configuration is seeded from the
/// configuration hash and an evaluation counter, so sessions replay
/// bit-for-bit under the same seed while repeated measurements of the
/// same configuration still differ (noisy objective).
class SimulatedPostgres : public ObjectiveFunction {
 public:
  SimulatedPostgres(WorkloadSpec workload, SimulatedPostgresOptions options = {});

  EvalResult Evaluate(const Configuration& config) override;

  /// Short measurement: the DES engine runs round(des_transactions *
  /// fidelity) transactions (at least 1); the analytic engine models a
  /// shorter run as noisier — sigma grows by 1/sqrt(fidelity), the
  /// standard-error scaling of averaging over fewer transactions.
  /// fidelity >= 1 is exactly Evaluate(config) (same noise stream,
  /// same bits). Every call consumes one evaluation index, whatever
  /// the fidelity, so the noise stream stays a function of evaluation
  /// order alone.
  EvalResult EvaluateAt(const Configuration& config, double fidelity) override;

  const ConfigSpace& config_space() const override { return space_; }

  /// Independent simulator instance over the same workload and
  /// options (fresh evaluation counter); enables the session's
  /// parallel batch evaluation.
  std::unique_ptr<ObjectiveFunction> Clone() const override;

  /// The per-evaluation noise counter, so checkpointed sessions resume
  /// with the identical noise stream (see TuningSession::Save).
  std::optional<std::string> SaveState() const override {
    return std::to_string(eval_count_);
  }
  Status RestoreState(const std::string& state) override;

  bool maximize() const override {
    return options_.target == TuningTarget::kThroughput;
  }

  /// Noise-free evaluation (model ground truth; used by analysis and
  /// tests).
  ModelOutput RunNoiseless(const Configuration& config) const;

  const WorkloadSpec& workload() const { return model_->workload(); }
  const PerfModel& model() const { return *model_; }
  int evaluations() const { return eval_count_; }

 private:
  ConfigSpace space_;
  SimulatedPostgresOptions options_;
  std::unique_ptr<PerfModel> model_;
  int eval_count_ = 0;
};

}  // namespace dbsim
}  // namespace llamatune
