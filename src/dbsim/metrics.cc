#include "src/dbsim/metrics.h"

#include <cmath>

namespace llamatune {
namespace dbsim {

const std::vector<std::string>& MetricNames() {
  static const std::vector<std::string> kNames = {
      "xact_commit_rate",     "xact_rollback_rate",   "blks_read",
      "blks_hit",             "tup_returned",         "tup_fetched",
      "tup_inserted",         "tup_updated",          "tup_deleted",
      "conflicts",            "deadlocks",            "temp_files",
      "temp_bytes",           "blk_read_time",        "blk_write_time",
      "buffers_checkpoint",   "buffers_clean",        "buffers_backend",
      "checkpoints_timed",    "checkpoints_req",      "wal_bytes",
      "wal_fsyncs",           "avg_latency",          "p95_latency",
      "cpu_utilization",      "io_utilization",       "lock_wait_time",
  };
  return kNames;
}

namespace {
// log1p compression keeps widely ranged counters in a NN-friendly
// scale while preserving ordering.
double Squash(double x) { return std::log1p(std::max(0.0, x)); }
}  // namespace

std::vector<double> CountersToMetrics(const RunCounters& c) {
  std::vector<double> m;
  m.reserve(kNumMetrics);
  m.push_back(Squash(c.throughput));
  m.push_back(Squash(c.rollback_rate));
  m.push_back(Squash(c.blks_read_per_s));
  m.push_back(Squash(c.blks_hit_per_s));
  m.push_back(Squash(c.tup_returned_per_s));
  m.push_back(Squash(c.tup_fetched_per_s));
  m.push_back(Squash(c.tup_inserted_per_s));
  m.push_back(Squash(c.tup_updated_per_s));
  m.push_back(Squash(c.tup_deleted_per_s));
  m.push_back(Squash(c.conflicts_per_s));
  m.push_back(Squash(c.deadlocks_per_s));
  m.push_back(Squash(c.temp_files_per_s));
  m.push_back(Squash(c.temp_bytes_per_s));
  m.push_back(Squash(c.blk_read_time_ms_per_s));
  m.push_back(Squash(c.blk_write_time_ms_per_s));
  m.push_back(Squash(c.buffers_checkpoint_per_s));
  m.push_back(Squash(c.buffers_clean_per_s));
  m.push_back(Squash(c.buffers_backend_per_s));
  m.push_back(Squash(c.checkpoints_timed_per_min));
  m.push_back(Squash(c.checkpoints_req_per_min));
  m.push_back(Squash(c.wal_bytes_per_s));
  m.push_back(Squash(c.wal_fsyncs_per_s));
  m.push_back(Squash(c.avg_latency_ms));
  m.push_back(Squash(c.p95_latency_ms));
  m.push_back(c.cpu_utilization);
  m.push_back(c.io_utilization);
  m.push_back(Squash(c.lock_wait_ms_per_s));
  return m;
}

}  // namespace dbsim
}  // namespace llamatune
