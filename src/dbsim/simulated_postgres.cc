#include "src/dbsim/simulated_postgres.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "src/common/fault_injection.h"
#include "src/common/rng.h"
#include "src/dbsim/des/des_engine.h"

namespace llamatune {
namespace dbsim {

SimulatedPostgres::SimulatedPostgres(WorkloadSpec workload,
                                     SimulatedPostgresOptions options)
    : space_(CatalogFor(options.version)), options_(options) {
  model_ = std::make_unique<PerfModel>(&space_, std::move(workload),
                                       options_.version);
}

std::unique_ptr<ObjectiveFunction> SimulatedPostgres::Clone() const {
  auto clone =
      std::make_unique<SimulatedPostgres>(model_->workload(), options_);
  clone->eval_count_ = eval_count_;
  return clone;
}

Status SimulatedPostgres::RestoreState(const std::string& state) {
  try {
    size_t pos = 0;
    int count = std::stoi(state, &pos);
    if (pos != state.size() || count < 0) {
      return Status::InvalidArgument(
          "SimulatedPostgres::RestoreState: bad evaluation counter: " + state);
    }
    eval_count_ = count;
  } catch (const std::exception&) {
    return Status::InvalidArgument(
        "SimulatedPostgres::RestoreState: bad evaluation counter: " + state);
  }
  return Status::OK();
}

ModelOutput SimulatedPostgres::RunNoiseless(const Configuration& config) const {
  if (options_.target == TuningTarget::kP95Latency) {
    return model_->RunAtFixedRate(config, options_.fixed_rate);
  }
  return model_->Run(config);
}

EvalResult SimulatedPostgres::Evaluate(const Configuration& config) {
  return EvaluateAt(config, 1.0);
}

EvalResult SimulatedPostgres::EvaluateAt(const Configuration& config,
                                         double fidelity) {
  if (!(fidelity > 0.0) || fidelity > 1.0) fidelity = 1.0;
  int eval_index = eval_count_++;
  // Injected evaluation failures (chaos testing): a crash, a timeout
  // abort, or a hang (stall, then the run completes normally). These
  // model the evaluator-side failure taxonomy of a real DBMS run
  // without perturbing the simulator's own noise stream.
  if (FaultInjection::ShouldFail("eval.crash")) {
    EvalResult result;
    result.crashed = true;
    result.outcome = TrialOutcome::kCrashed;
    result.metrics.assign(kNumMetrics, 0.0);
    return result;
  }
  if (FaultInjection::ShouldFail("eval.timeout")) {
    EvalResult result;
    result.outcome = TrialOutcome::kTimedOut;
    result.metrics.assign(kNumMetrics, 0.0);
    return result;
  }
  if (FaultInjection::ShouldFail("eval.hang")) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ModelOutput out = RunNoiseless(config);
  EvalResult result;
  if (out.crashed) {
    result.crashed = true;
    result.outcome = TrialOutcome::kCrashed;
    result.metrics.assign(kNumMetrics, 0.0);
    return result;
  }
  if (options_.engine == EngineKind::kDiscreteEvent) {
    // Execute the run transaction-by-transaction: throughput and tail
    // latency are measured, and run-to-run noise is inherent in the
    // sampled transaction stream (no synthetic noise on top).
    des::DesOptions des_options;
    des_options.max_transactions =
        fidelity < 1.0
            ? std::max<int>(1, static_cast<int>(std::lround(
                                   options_.des_transactions * fidelity)))
            : options_.des_transactions;
    des_options.seed = HashCombine(
        HashCombine(options_.noise_seed, config.Hash()),
        static_cast<uint64_t>(eval_index));
    des::DesResult run = des::SimulateRun(out, model_->workload(),
                                          des_options);
    result.value = options_.target == TuningTarget::kThroughput
                       ? run.throughput
                       : run.p95_latency_ms;
    result.fidelity = fidelity;
    RunCounters counters = out.counters;
    counters.avg_latency_ms = run.avg_latency_ms;
    counters.p95_latency_ms = run.p95_latency_ms;
    result.metrics = CountersToMetrics(counters);
    return result;
  }
  double noise = 1.0;
  if (options_.noise_sigma > 0.0) {
    Rng rng(HashCombine(HashCombine(options_.noise_seed, config.Hash()),
                        static_cast<uint64_t>(eval_index)));
    // A run over f * N transactions averages f times fewer samples, so
    // its measurement error scales by 1/sqrt(f).
    double sigma = options_.noise_sigma / std::sqrt(fidelity);
    noise = std::exp(rng.Gaussian(0.0, sigma));
  }
  result.fidelity = fidelity;
  if (options_.target == TuningTarget::kThroughput) {
    result.value = out.throughput * noise;
  } else {
    // Latency noise is heavier-tailed than throughput noise.
    result.value = out.p95_latency_ms * std::pow(noise, 1.5);
  }
  result.metrics = CountersToMetrics(out.counters);
  return result;
}

}  // namespace dbsim
}  // namespace llamatune
