#pragma once

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"

namespace llamatune {
namespace dbsim {
namespace des {

/// \brief One transaction type within a workload mix.
///
/// BenchBase workloads are mixes of named transaction types with very
/// different costs (e.g. TPC-C's NewOrder vs StockLevel); the tail of
/// the latency distribution is usually carried by the heavy types.
/// `weight` is the relative frequency; `cost_multiplier` scales the
/// workload's mean service demand; `write` marks read-write types.
struct TxnType {
  std::string name;
  double weight = 1.0;
  double cost_multiplier = 1.0;
  bool write = false;
};

/// \brief Weighted sampler over a workload's transaction types.
class TxnMix {
 public:
  /// Validates weights (positive, at least one type).
  static Result<TxnMix> Create(std::vector<TxnType> types);

  /// Samples a type index proportional to weight.
  int Sample(Rng* rng) const;

  int num_types() const { return static_cast<int>(types_.size()); }
  const TxnType& type(int i) const { return types_[i]; }

  /// Mix-weighted mean cost multiplier (used to normalize so the mix
  /// preserves the workload's overall mean service demand).
  double MeanCostMultiplier() const;

  /// Mix-weighted fraction of write transactions.
  double WriteFraction() const;

 private:
  explicit TxnMix(std::vector<TxnType> types);

  std::vector<TxnType> types_;
  std::vector<double> cumulative_;
};

/// \name Paper-workload transaction mixes
/// Shapes follow the benchmark definitions (TPC-C's five transactions,
/// SEATS's six, Twitter's five, YCSB's two ops, RS's four stressors);
/// weights approximate the standard mixes.
/// @{
TxnMix TpcCMix();
TxnMix SeatsMix();
TxnMix TwitterMix();
TxnMix YcsbMix(double read_fraction);
TxnMix ResourceStresserMix();
/// @}

/// Mix lookup by workload name; YCSB variants derive from the
/// read-only fraction. Unknown names get a single uniform type.
TxnMix MixForWorkload(const std::string& workload_name,
                      double read_only_fraction);

}  // namespace des
}  // namespace dbsim
}  // namespace llamatune
