#include "src/dbsim/des/des_engine.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/common/math_util.h"
#include "src/common/rng.h"
#include "src/dbsim/des/event_queue.h"
#include "src/dbsim/des/txn_mix.h"
#include "src/dbsim/des/zipf.h"

namespace llamatune {
namespace dbsim {
namespace des {

namespace {

constexpr int kEventTxnDone = 1;

// Gamma(shape k, given mean) via sum of exponentials for integer k —
// enough shape control for service-time skew.
double SampleGamma(int shape, double mean, Rng* rng) {
  double scale = mean / shape;
  double sum = 0.0;
  for (int i = 0; i < shape; ++i) {
    sum += -std::log(std::max(rng->Uniform(), 1e-12)) * scale;
  }
  return sum;
}

}  // namespace

DesResult SimulateRun(const ModelOutput& analytic,
                      const WorkloadSpec& workload,
                      const DesOptions& options) {
  DesResult result;
  if (analytic.crashed || analytic.throughput <= 0.0) return result;

  Rng rng(options.seed);
  const RunCounters& counters = analytic.counters;
  double mean_latency_s = analytic.avg_latency_ms / 1000.0;

  // Decompose the analytic mean into the episodic parts the DES
  // re-creates explicitly, and a base part it samples smoothly.
  double x = analytic.throughput;  // txn/s
  double lock_share =
      x > 0 ? Clamp(counters.lock_wait_ms_per_s / 1000.0 / x /
                        mean_latency_s,
                    0.0, 0.5)
            : 0.0;
  double io_share =
      x > 0 ? Clamp(counters.blk_read_time_ms_per_s / 1000.0 / x /
                        mean_latency_s,
                    0.0, 0.6)
            : 0.0;

  // Checkpoint cadence and intensity: low completion targets compress
  // the same flush work into a shorter, harsher window.
  double ckpt_per_min =
      counters.checkpoints_timed_per_min + counters.checkpoints_req_per_min;
  double spike = std::max(0.0, analytic.p95_latency_ms /
                                       std::max(analytic.avg_latency_ms,
                                                1e-9) -
                                   1.7);
  double ckpt_interval_s =
      ckpt_per_min > 1e-6 ? 60.0 / ckpt_per_min : 1e18;
  double ckpt_slowdown = 1.0 + spike;
  // The simulated horizon is much shorter than a real 5-minute run;
  // compress the checkpoint period (keeping the 25% duty cycle) so the
  // run still averages over several cycles, and randomize the phase so
  // runs do not all start at a cycle boundary.
  double horizon_s = options.max_transactions * mean_latency_s /
                     std::max(workload.clients, 1);
  double period_s = std::min(ckpt_interval_s, horizon_s / 8.0);
  period_s = std::max(period_s, 1e-3);
  double window_s = ckpt_interval_s < 1e17 ? 0.25 * period_s : 0.0;

  // Transaction-type mix: heavy types (TPC-C Delivery/StockLevel
  // etc.) carry the tail; only write types contend for locks. Costs
  // are normalized by the mix mean so the overall mean demand is
  // preserved.
  TxnMix mix =
      MixForWorkload(workload.name, workload.read_only_txn_fraction);
  double mix_mean_cost = mix.MeanCostMultiplier();
  double lock_prob_given_write = Clamp(workload.contention, 0.0, 0.9);
  double lock_rate = lock_prob_given_write * mix.WriteFraction();
  double lock_wait_mean_s =
      lock_rate > 1e-9 ? lock_share * mean_latency_s / lock_rate : 0.0;

  // Zipfian key space decides which transactions pay the miss path.
  // The hot-key cutoff must hold the analytic *access-mass* hit rate,
  // not a key-space fraction, so calibrate it against sampled draws.
  ZipfianGenerator zipf(100000, workload.zipf_theta);
  double hit_rate =
      counters.blks_hit_per_s + counters.blks_read_per_s > 0
          ? counters.blks_hit_per_s /
                (counters.blks_hit_per_s + counters.blks_read_per_s)
          : 1.0;
  int64_t hot_keys = zipf.num_keys();
  double miss_prob = 0.0;
  if (hit_rate < 0.999) {
    Rng probe(HashCombine(options.seed, 0xca11b8a7ULL));
    std::vector<int64_t> draws(2000);
    for (int64_t& d : draws) d = zipf.Next(&probe);
    std::sort(draws.begin(), draws.end());
    hot_keys = draws[static_cast<size_t>(Clamp(hit_rate, 0.0, 1.0) *
                                         (draws.size() - 1))];
    for (int64_t d : draws) {
      if (d >= hot_keys) miss_prob += 1.0;
    }
    miss_prob /= static_cast<double>(draws.size());
  }
  double io_penalty_s =
      miss_prob > 1e-6 ? io_share * mean_latency_s / miss_prob : 0.0;

  // Compensate the periodic checkpoint slowdown so the DES mean stays
  // on the analytic mean. In a closed loop, in-window transactions run
  // slower, so the *start-count* weight of the window is
  // (w/s) / (w/s + (1-w)), not w — use that weight.
  double window_frac =
      window_s > 0.0 ? Clamp(window_s / period_s, 0.0, 1.0) : 0.0;
  double in_weight =
      window_frac > 0.0
          ? (window_frac / ckpt_slowdown) /
                (window_frac / ckpt_slowdown + (1.0 - window_frac))
          : 0.0;
  double slowdown_compensation = 1.0 + in_weight * (ckpt_slowdown - 1.0);
  double base_mean_s =
      std::max(1e-9, mean_latency_s * (1.0 - lock_share - io_share) /
                         slowdown_compensation);
  io_penalty_s /= slowdown_compensation;
  lock_wait_mean_s /= slowdown_compensation;

  EventQueue queue;
  std::vector<double> latencies;
  latencies.reserve(options.max_transactions);
  double phase_offset = rng.Uniform(0.0, period_s);

  auto sample_latency = [&](double now) {
    const TxnType& txn = mix.type(mix.Sample(&rng));
    double t = SampleGamma(
        6, base_mean_s * txn.cost_multiplier / mix_mean_cost, &rng);
    if (zipf.Next(&rng) >= hot_keys) t += io_penalty_s;  // cold key
    if (txn.write && rng.Bernoulli(lock_prob_given_write)) {
      t += -std::log(std::max(rng.Uniform(), 1e-12)) * lock_wait_mean_s;
    }
    // Transactions overlapping a checkpoint window run slower.
    if (window_s > 0.0) {
      double phase = std::fmod(now + phase_offset, period_s);
      if (phase < window_s) t *= ckpt_slowdown;
    }
    return t;
  };

  // Closed loop: every client immediately starts its next transaction.
  std::vector<double> start_time(workload.clients, 0.0);
  for (int c = 0; c < workload.clients; ++c) {
    queue.Push(sample_latency(0.0), kEventTxnDone, c);
  }

  int completed = 0;
  double now = 0.0;
  while (completed < options.max_transactions && !queue.empty()) {
    Event event = queue.Pop();
    now = event.time;
    latencies.push_back((now - start_time[event.actor]) * 1000.0);
    ++completed;
    start_time[event.actor] = now;
    queue.Push(now + sample_latency(now), kEventTxnDone, event.actor);
  }

  // Discard warm-up completions.
  int skip = static_cast<int>(latencies.size() * options.warmup_fraction);
  std::vector<double> steady(latencies.begin() + skip, latencies.end());
  if (steady.empty()) return result;

  result.completed = static_cast<int>(steady.size());
  result.sim_seconds = now;
  result.avg_latency_ms = Mean(steady);
  result.p95_latency_ms = Percentile(steady, 95.0);
  result.p99_latency_ms = Percentile(steady, 99.0);
  double measured_window_s =
      now * (1.0 - options.warmup_fraction);
  result.throughput = measured_window_s > 0
                          ? result.completed / measured_window_s
                          : 0.0;
  if (options.capture_latencies) result.latencies = std::move(latencies);
  return result;
}

}  // namespace des
}  // namespace dbsim
}  // namespace llamatune
