#include "src/dbsim/des/zipf.h"

#include <cmath>

namespace llamatune {
namespace dbsim {
namespace des {

namespace {

double Zeta(int64_t n, double theta) {
  // Exact for small n; the standard incremental approximation is
  // unnecessary here because key spaces are capped below.
  double sum = 0.0;
  for (int64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(i, theta);
  return sum;
}

}  // namespace

ZipfianGenerator::ZipfianGenerator(int64_t n, double theta)
    : n_(n < 1 ? 1 : n), theta_(theta) {
  if (theta_ <= 0.0) return;  // uniform fallback
  zetan_ = Zeta(n_, theta_);
  zeta2_ = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / n_, 1.0 - theta_)) / (1.0 - zeta2_ / zetan_);
}

int64_t ZipfianGenerator::Next(Rng* rng) {
  if (theta_ <= 0.0) return rng->UniformInt(0, n_ - 1);
  double u = rng->Uniform(0.0, 1.0);
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  int64_t k = static_cast<int64_t>(
      n_ * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  if (k < 0) k = 0;
  if (k >= n_) k = n_ - 1;
  return k;
}

}  // namespace des
}  // namespace dbsim
}  // namespace llamatune
