#include "src/dbsim/des/event_queue.h"

#include <limits>

namespace llamatune {
namespace dbsim {
namespace des {

void EventQueue::Push(double time, int kind, int actor) {
  Event event;
  event.time = time;
  event.id = next_id_++;
  event.kind = kind;
  event.actor = actor;
  heap_.push(event);
}

Event EventQueue::Pop() {
  Event event = heap_.top();
  heap_.pop();
  return event;
}

double EventQueue::PeekTime() const {
  if (heap_.empty()) return std::numeric_limits<double>::infinity();
  return heap_.top().time;
}

}  // namespace des
}  // namespace dbsim
}  // namespace llamatune
