#pragma once

#include <cstddef>
#include <cstdint>
#include <queue>
#include <vector>

namespace llamatune {
namespace dbsim {
namespace des {

/// \brief One scheduled simulation event.
struct Event {
  double time = 0.0;   ///< simulated seconds
  int64_t id = 0;      ///< tie-breaker (FIFO for equal times)
  int kind = 0;        ///< interpreted by the engine
  int actor = -1;      ///< e.g. client index
};

/// \brief Min-heap event queue keyed by (time, insertion id).
///
/// Deterministic: equal-time events pop in insertion order, so a
/// simulation driven by a seeded Rng replays exactly.
class EventQueue {
 public:
  void Push(double time, int kind, int actor);
  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  /// Pops the earliest event. Precondition: !empty().
  Event Pop();

  /// Time of the earliest event (infinity when empty).
  double PeekTime() const;

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  int64_t next_id_ = 0;
};

}  // namespace des
}  // namespace dbsim
}  // namespace llamatune
