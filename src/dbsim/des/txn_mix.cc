#include "src/dbsim/des/txn_mix.h"

namespace llamatune {
namespace dbsim {
namespace des {

TxnMix::TxnMix(std::vector<TxnType> types) : types_(std::move(types)) {
  double total = 0.0;
  cumulative_.reserve(types_.size());
  for (const TxnType& t : types_) {
    total += t.weight;
    cumulative_.push_back(total);
  }
  for (double& c : cumulative_) c /= total;
}

Result<TxnMix> TxnMix::Create(std::vector<TxnType> types) {
  if (types.empty()) {
    return Status::InvalidArgument("transaction mix needs >= 1 type");
  }
  for (const TxnType& t : types) {
    if (t.weight <= 0.0) {
      return Status::InvalidArgument("transaction type '" + t.name +
                                     "' needs positive weight");
    }
    if (t.cost_multiplier <= 0.0) {
      return Status::InvalidArgument("transaction type '" + t.name +
                                     "' needs positive cost");
    }
  }
  return TxnMix(std::move(types));
}

int TxnMix::Sample(Rng* rng) const {
  double u = rng->Uniform(0.0, 1.0);
  for (size_t i = 0; i < cumulative_.size(); ++i) {
    if (u <= cumulative_[i]) return static_cast<int>(i);
  }
  return static_cast<int>(cumulative_.size()) - 1;
}

double TxnMix::MeanCostMultiplier() const {
  double total_weight = 0.0, total = 0.0;
  for (const TxnType& t : types_) {
    total_weight += t.weight;
    total += t.weight * t.cost_multiplier;
  }
  return total / total_weight;
}

double TxnMix::WriteFraction() const {
  double total_weight = 0.0, writes = 0.0;
  for (const TxnType& t : types_) {
    total_weight += t.weight;
    if (t.write) writes += t.weight;
  }
  return writes / total_weight;
}

TxnMix TpcCMix() {
  // The standard TPC-C mix; Delivery and StockLevel carry the tail.
  return *TxnMix::Create({
      {"NewOrder", 45.0, 1.0, true},
      {"Payment", 43.0, 0.45, true},
      {"OrderStatus", 4.0, 0.5, false},
      {"Delivery", 4.0, 3.5, true},
      {"StockLevel", 4.0, 4.5, false},
  });
}

TxnMix SeatsMix() {
  return *TxnMix::Create({
      {"FindFlights", 10.0, 1.6, false},
      {"FindOpenSeats", 35.0, 0.7, false},
      {"NewReservation", 20.0, 1.2, true},
      {"UpdateCustomer", 10.0, 0.8, true},
      {"UpdateReservation", 15.0, 0.9, true},
      {"DeleteReservation", 10.0, 0.9, true},
  });
}

TxnMix TwitterMix() {
  return *TxnMix::Create({
      {"GetTweet", 1.0, 0.6, false},
      {"GetTweetsFromFollowing", 1.0, 1.4, true},
      {"GetFollowers", 7.5, 1.1, true},
      {"GetUserTweets", 90.0, 0.9, true},
      {"InsertTweet", 0.5, 1.3, true},
  });
}

TxnMix YcsbMix(double read_fraction) {
  double read_weight = read_fraction * 100.0;
  double write_weight = 100.0 - read_weight;
  if (read_weight <= 0.0) read_weight = 0.5;
  if (write_weight <= 0.0) write_weight = 0.5;
  return *TxnMix::Create({
      {"Read", read_weight, 0.9, false},
      {"Update", write_weight, 1.1, true},
  });
}

TxnMix ResourceStresserMix() {
  return *TxnMix::Create({
      {"CPU", 25.0, 1.2, false},
      {"IO", 25.0, 1.1, true},
      {"Contention", 25.0, 0.9, true},
      {"Mixed", 25.0, 0.8, true},
  });
}

TxnMix MixForWorkload(const std::string& workload_name,
                      double read_only_fraction) {
  if (workload_name == "TPC-C") return TpcCMix();
  if (workload_name == "SEATS") return SeatsMix();
  if (workload_name == "Twitter") return TwitterMix();
  if (workload_name == "RS") return ResourceStresserMix();
  if (workload_name.rfind("YCSB", 0) == 0) {
    return YcsbMix(read_only_fraction);
  }
  return *TxnMix::Create({{"Default", 1.0, 1.0, true}});
}

}  // namespace des
}  // namespace dbsim
}  // namespace llamatune
