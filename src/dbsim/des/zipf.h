#pragma once

#include <cstdint>
#include <vector>

#include "src/common/rng.h"

namespace llamatune {
namespace dbsim {
namespace des {

/// \brief Zipfian key generator (Gray et al. / YCSB's algorithm).
///
/// Draws keys in [0, n) with P(k) proportional to 1/(k+1)^theta. Used
/// by the discrete-event engine to sample per-transaction cache
/// behaviour under the skew the workloads declare (YCSB runs a
/// zipfian request distribution; paper Table 4 workloads inherit it).
class ZipfianGenerator {
 public:
  /// \param n number of distinct keys (>= 1)
  /// \param theta skew in [0, 1); 0 degenerates to uniform.
  ZipfianGenerator(int64_t n, double theta);

  int64_t Next(Rng* rng);

  int64_t num_keys() const { return n_; }
  double theta() const { return theta_; }

 private:
  int64_t n_;
  double theta_;
  double alpha_ = 0.0;
  double zetan_ = 0.0;
  double eta_ = 0.0;
  double zeta2_ = 0.0;
};

}  // namespace des
}  // namespace dbsim
}  // namespace llamatune
