#pragma once

#include <cstdint>
#include <vector>

#include "src/dbsim/perf_model.h"
#include "src/dbsim/workloads.h"

namespace llamatune {
namespace dbsim {
namespace des {

/// \brief Discrete-event run settings.
struct DesOptions {
  /// Transactions to execute (across all clients).
  int max_transactions = 20000;
  /// Leading fraction of completions discarded as warm-up.
  double warmup_fraction = 0.1;
  uint64_t seed = 1;
  /// When true, DesResult::latencies records every completion's
  /// latency (pre-warmup, completion order). Test/diagnostic hook for
  /// the variable-length-run prefix property (see tests/des_test.cc);
  /// does not perturb the simulation.
  bool capture_latencies = false;
};

/// \brief Measured outcome of one discrete-event run.
struct DesResult {
  double throughput = 0.0;   ///< committed txns / sec (post-warmup)
  double avg_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  int completed = 0;
  double sim_seconds = 0.0;
  /// Raw per-completion latencies (ms), warm-up included; filled only
  /// when DesOptions::capture_latencies is set.
  std::vector<double> latencies;
};

/// \brief Closed-loop discrete-event simulation layered on the
/// analytic model's rates.
///
/// The analytic PerfModel answers "what are the mean per-transaction
/// costs and background cadences under this configuration?"; this
/// engine *executes* a run against those rates: N closed-loop clients,
/// per-transaction service times sampled from a Gamma distribution,
/// Zipfian key draws deciding which transactions pay the I/O miss
/// penalty, probabilistic lock-conflict waits, and periodic checkpoint
/// windows during which service degrades (sharper when
/// checkpoint_completion_target is low). Throughput and tail latency
/// are then *measured* from the empirical distribution rather than
/// derived from a closed form — which is how the simulator earns its
/// p95 numbers and its run-length-dependent noise.
DesResult SimulateRun(const ModelOutput& analytic, const WorkloadSpec& workload,
                      const DesOptions& options);

}  // namespace des
}  // namespace dbsim
}  // namespace llamatune
