#pragma once

#include "src/knobs/config_space.h"

namespace llamatune {
namespace dbsim {

/// \brief Which simulated PostgreSQL version's knob surface to expose.
enum class PostgresVersion { kV96, kV136 };

/// \brief The 90-knob tunable surface of PostgreSQL v9.6 used
/// throughout the paper (debug/security/path knobs excluded), with the
/// 17 hybrid knobs' special values taken from the documentation.
ConfigSpace PostgresV96Catalog();

/// \brief The 112-knob surface of PostgreSQL v13.6 (paper §6.3):
/// the v9.6 set minus removed knobs (replacement_sort_tuples), plus
/// the JIT / parallel-query / WAL-era additions; 23 hybrid knobs.
ConfigSpace PostgresV136Catalog();

/// Catalog by version tag.
ConfigSpace CatalogFor(PostgresVersion version);

}  // namespace dbsim
}  // namespace llamatune
