#pragma once

#include <string>

#include "src/dbsim/knob_catalog.h"
#include "src/dbsim/metrics.h"
#include "src/dbsim/workloads.h"
#include "src/knobs/config_space.h"
#include "src/knobs/configuration.h"

namespace llamatune {
namespace dbsim {

/// \brief Noise-free output of one simulated workload run.
struct ModelOutput {
  bool crashed = false;
  std::string crash_reason;
  double throughput = 0.0;      ///< committed txns / sec
  double avg_latency_ms = 0.0;  ///< mean per-transaction latency
  double p95_latency_ms = 0.0;  ///< tail latency (open-loop estimate)
  RunCounters counters;
};

/// \brief Typed view over a Configuration with name-based access and
/// catalog-default fallback for knobs absent from a given version.
class KnobView {
 public:
  KnobView(const ConfigSpace* space, const Configuration* config)
      : space_(space), config_(config) {}

  /// Numeric value of `name`, or `fallback` when the knob is absent.
  double Get(const std::string& name, double fallback = 0.0) const;

  /// Categorical knob as its category string ("" when absent).
  std::string GetCategory(const std::string& name) const;

  /// Boolean knob ("on"/"off" categorical) as bool.
  bool GetBool(const std::string& name, bool fallback = false) const;

  bool Has(const std::string& name) const;

 private:
  const ConfigSpace* space_;
  const Configuration* config_;
};

/// \brief White-box analytic performance model of a PostgreSQL
/// instance on the paper's testbed (10-core Xeon, 16 GB RAM, SATA
/// SSD), serving 40 closed-loop clients.
///
/// The model composes per-transaction latency from buffer-pool /
/// OS-cache hit rates under Zipfian skew, WAL flush + group commit,
/// checkpoint pressure, backend writeback interference, autovacuum
/// overhead vs. bloat, lock contention, planner quality, JIT and
/// parallel-query effects — each gated by the workload's sensitivity
/// profile so that only ~8-12 knobs materially matter per workload.
///
/// Crashes: configurations that exceed RAM (shared_buffers + per-
/// client work memory), configure fewer connections than clients, or
/// starve the lock table, report crashed=true.
///
/// The model is deterministic; run-to-run noise is added by
/// SimulatedPostgres on top.
class PerfModel {
 public:
  PerfModel(const ConfigSpace* space, WorkloadSpec workload,
            PostgresVersion version);

  /// Evaluates one configuration (closed-loop, fixed client count).
  ModelOutput Run(const Configuration& config) const;

  /// Evaluates under a fixed arrival rate (open-loop), for tail-latency
  /// tuning targets (paper §6.2 "Optimizing for Tail Latency").
  ModelOutput RunAtFixedRate(const Configuration& config,
                             double requests_per_second) const;

  const WorkloadSpec& workload() const { return workload_; }
  PostgresVersion version() const { return version_; }

  /// Hardware constants of the simulated testbed.
  static constexpr double kRamGb = 16.0;
  static constexpr double kNumCores = 10.0;
  static constexpr double kPageReadMs = 0.08;   ///< SSD random 8kB read
  static constexpr double kFsyncMs = 2.0;       ///< SATA SSD fsync latency

 private:
  struct LatencyBreakdown {
    bool crashed = false;
    std::string crash_reason;
    double cpu_ms = 0.0;
    double io_ms = 0.0;
    double wal_ms = 0.0;
    double writeback_ms = 0.0;
    double checkpoint_ms = 0.0;
    double vacuum_ms = 0.0;
    double lock_ms = 0.0;
    double total_ms = 0.0;
    double spike_factor = 0.0;  ///< adds to the p95/avg ratio
    double buffer_hit_rate = 0.0;
    double wal_kb_per_txn = 0.0;
    double wal_fsyncs_per_txn = 0.0;
    double checkpoints_per_min = 0.0;
    double checkpoints_req_per_min = 0.0;
    double spill_fraction = 0.0;
    double abort_fraction = 0.0;
  };

  LatencyBreakdown ComputeLatency(const Configuration& config) const;
  ModelOutput Assemble(const LatencyBreakdown& breakdown,
                       double throughput) const;

  const ConfigSpace* space_;
  WorkloadSpec workload_;
  PostgresVersion version_;
  /// Calibration factor making the default configuration hit the
  /// workload's default_throughput anchor.
  double time_scale_ = 1.0;
};

}  // namespace dbsim
}  // namespace llamatune
