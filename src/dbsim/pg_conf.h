#pragma once

#include <string>

#include "src/knobs/config_space.h"

namespace llamatune {
namespace dbsim {

/// \brief Renders a Configuration as postgresql.conf content.
///
/// Numeric knobs are emitted with their catalog unit suffix (e.g.
/// `shared_buffers = 786432` pages is written as `shared_buffers =
/// 6GB` when the unit is 8kB and the value is round), categorical
/// knobs as their category string. This is the hand-off artifact a
/// deployment would apply to the real server after tuning.
std::string EmitPostgresConf(const ConfigSpace& space,
                             const Configuration& config);

/// \brief Formats one knob value with unit handling (exposed for
/// tests).
std::string FormatKnobValue(const KnobSpec& spec, double value);

}  // namespace dbsim
}  // namespace llamatune
