#include "src/dbsim/knob_catalog.h"
#include "src/dbsim/knob_catalog_internal.h"

namespace llamatune {
namespace dbsim {
namespace internal {

std::vector<KnobSpec> BaseV96Knobs() {
  std::vector<KnobSpec> knobs;
  auto add = [&](KnobSpec spec, const char* unit = "") {
    spec.unit = unit;
    knobs.push_back(std::move(spec));
  };

  // ------------------------------------------------------- memory
  add(WithLogScale(IntegerKnob("shared_buffers", 16, 2097152, 16384,
                               "Amount of memory for shared buffers")),
      "8kB");
  add(WithLogScale(IntegerKnob("work_mem", 64, 2097152, 4096,
                               "Memory for query sorts/hashes before "
                               "spilling to temp files")),
      "kB");
  add(WithLogScale(IntegerKnob("maintenance_work_mem", 1024, 2097152, 65536,
                               "Memory for maintenance operations "
                               "(VACUUM, CREATE INDEX)")),
      "kB");
  add(WithLogScale(IntegerKnob("effective_cache_size", 128, 4194304, 524288,
                               "Planner's assumption about total cache "
                               "available to one query")),
      "8kB");
  add(WithLogScale(IntegerKnob("temp_buffers", 100, 131072, 1024,
                               "Per-session temporary-table buffers")),
      "8kB");
  add(CategoricalKnob("huge_pages", {"try", "off", "on"}, 0,
                      "Use huge memory pages for the main shared "
                      "memory area"));

  // ---------------------------------------------------------- WAL
  add(WithSpecialValues(
          IntegerKnob("wal_buffers", -1, 262143, -1,
                      "Disk-page buffers in shared memory for WAL; -1 "
                      "selects 1/32nd of shared_buffers"),
          {-1}),
      "8kB");
  add(WithLogScale(IntegerKnob("max_wal_size", 32, 65536, 1024,
                               "WAL size that triggers a checkpoint")),
      "MB");
  add(WithLogScale(IntegerKnob("min_wal_size", 32, 16384, 80,
                               "Minimum WAL size to keep recycled")),
      "MB");
  add(IntegerKnob("checkpoint_timeout", 30, 3600, 300,
                  "Maximum time between automatic checkpoints"),
      "s");
  add(RealKnob("checkpoint_completion_target", 0.1, 0.9, 0.5,
               "Fraction of the checkpoint interval over which writes "
               "are spread"));
  add(WithSpecialValues(
          IntegerKnob("checkpoint_flush_after", 0, 256, 32,
                      "Pages after which checkpoint writes are flushed "
                      "to disk; 0 disables forced writeback"),
          {0}),
      "8kB");
  add(IntegerKnob("checkpoint_warning", 0, 3600, 30,
                  "Warn if checkpoints caused by WAL fill are closer "
                  "than this"),
      "s");
  add(IntegerKnob("commit_delay", 0, 100000, 0,
                  "Delay between transaction commit and WAL flush, "
                  "enabling group commit"),
      "us");
  add(IntegerKnob("commit_siblings", 0, 100, 5,
                  "Minimum concurrent open transactions before "
                  "honoring commit_delay"));
  add(IntegerKnob("wal_writer_delay", 1, 10000, 200,
                  "WAL writer wakeup interval"),
      "ms");
  add(WithSpecialValues(
          WithLogScale(IntegerKnob(
              "wal_writer_flush_after", 0, 2097152, 128,
              "WAL amount written by the WAL writer that triggers a "
              "flush; 0 forces a flush every time")),
          {0}),
      "8kB");
  add(WithSpecialValues(
          IntegerKnob("backend_flush_after", 0, 256, 0,
                      "Pages after which previously performed backend "
                      "writes are flushed to disk; 0 disables forced "
                      "writeback (OS manages it)"),
          {0}),
      "8kB");
  add(BoolKnob("full_page_writes", true,
               "Write full pages to WAL after a checkpoint"));
  add(BoolKnob("wal_compression", false, "Compress full-page writes"));
  add(BoolKnob("wal_log_hints", false,
               "WAL-log hint bit changes (for pg_rewind)"));
  add(CategoricalKnob("synchronous_commit",
                      {"off", "local", "remote_write", "on"}, 3,
                      "Synchronization level before reporting commit"));
  add(CategoricalKnob("wal_sync_method",
                      {"fdatasync", "fsync", "open_datasync", "open_sync"}, 0,
                      "Method used to force WAL to disk"));

  // ----------------------------------------------- background writer
  add(IntegerKnob("bgwriter_delay", 10, 10000, 200,
                  "Background writer round interval"),
      "ms");
  add(WithSpecialValues(
          IntegerKnob("bgwriter_lru_maxpages", 0, 1000, 100,
                      "Max buffers written per bgwriter round; 0 "
                      "disables background writing"),
          {0}));
  add(RealKnob("bgwriter_lru_multiplier", 0.0, 10.0, 2.0,
               "Multiple of recent buffer demand to clean ahead"));
  add(WithSpecialValues(
          IntegerKnob("bgwriter_flush_after", 0, 256, 64,
                      "Pages after which bgwriter writes are flushed; "
                      "0 disables forced writeback"),
          {0}),
      "8kB");

  // ------------------------------------------------------------ I/O
  add(WithSpecialValues(
          IntegerKnob("effective_io_concurrency", 0, 1000, 1,
                      "Concurrent disk I/O requests (prefetch depth); "
                      "0 disables prefetching"),
          {0}));

  // -------------------------------------------------- planner costs
  add(RealKnob("random_page_cost", 1.0, 10.0, 4.0,
               "Planner cost of a non-sequential page fetch"));
  add(RealKnob("seq_page_cost", 0.1, 10.0, 1.0,
               "Planner cost of a sequential page fetch"));
  add(RealKnob("cpu_tuple_cost", 0.001, 1.0, 0.01,
               "Planner cost of processing one row"));
  add(RealKnob("cpu_index_tuple_cost", 0.0005, 1.0, 0.005,
               "Planner cost of processing one index entry"));
  add(RealKnob("cpu_operator_cost", 0.00025, 1.0, 0.0025,
               "Planner cost of processing one operator/function"));
  add(IntegerKnob("default_statistics_target", 1, 10000, 100,
                  "Default statistics detail level for ANALYZE"));
  add(IntegerKnob("from_collapse_limit", 1, 64, 8,
                  "Max FROM items before subquery collapsing stops"));
  add(IntegerKnob("join_collapse_limit", 1, 64, 8,
                  "Max items before explicit JOIN order is kept"));
  add(RealKnob("cursor_tuple_fraction", 0.0, 1.0, 0.1,
               "Planner estimate of cursor rows fetched"));

  // ----------------------------------------------------------- GEQO
  add(BoolKnob("geqo", true, "Genetic query optimizer for large joins"));
  add(IntegerKnob("geqo_threshold", 2, 64, 12,
                  "FROM items beyond which GEQO is used"));
  add(IntegerKnob("geqo_effort", 1, 10, 5, "GEQO effort scaling knob"));
  add(WithSpecialValues(
          IntegerKnob("geqo_pool_size", 0, 1000, 0,
                      "GEQO population size; 0 chooses a suitable value "
                      "based on geqo_effort and table count"),
          {0}));
  add(IntegerKnob("geqo_generations", 0, 1000, 0,
                  "GEQO iterations; 0 derives from pool size"));
  add(RealKnob("geqo_selection_bias", 1.5, 2.0, 2.0,
               "GEQO selective pressure within the population"));
  add(RealKnob("geqo_seed", 0.0, 1.0, 0.0,
               "GEQO random path selection seed"));

  // -------------------------------------------------- planner flags
  add(BoolKnob("enable_seqscan", true, "Allow sequential scan plans"));
  add(BoolKnob("enable_indexscan", true, "Allow index scan plans"));
  add(BoolKnob("enable_indexonlyscan", true, "Allow index-only scans"));
  add(BoolKnob("enable_bitmapscan", true, "Allow bitmap scan plans"));
  add(BoolKnob("enable_hashagg", true, "Allow hashed aggregation"));
  add(BoolKnob("enable_hashjoin", true, "Allow hash joins"));
  add(BoolKnob("enable_mergejoin", true, "Allow merge joins"));
  add(BoolKnob("enable_nestloop", true, "Allow nested-loop joins"));
  add(BoolKnob("enable_sort", true, "Allow explicit sort steps"));
  add(BoolKnob("enable_material", true, "Allow materialization"));
  add(BoolKnob("enable_tidscan", true, "Allow TID scan plans"));

  // ----------------------------------------------------- autovacuum
  add(BoolKnob("autovacuum", true, "Run the autovacuum launcher"));
  add(IntegerKnob("autovacuum_max_workers", 1, 20, 3,
                  "Maximum simultaneous autovacuum workers"));
  add(IntegerKnob("autovacuum_naptime", 1, 3600, 60,
                  "Sleep between autovacuum runs"),
      "s");
  add(IntegerKnob("autovacuum_vacuum_threshold", 0, 10000, 50,
                  "Tuple updates/deletes before vacuum"));
  add(IntegerKnob("autovacuum_analyze_threshold", 0, 10000, 50,
                  "Tuple changes before analyze"));
  add(WithLogScale(RealKnob("autovacuum_vacuum_scale_factor", 0.005, 1.0, 0.2,
                            "Fraction of table size before vacuum")));
  add(WithLogScale(RealKnob("autovacuum_analyze_scale_factor", 0.005, 1.0, 0.1,
                            "Fraction of table size before analyze")));
  add(WithSpecialValues(
          IntegerKnob("autovacuum_vacuum_cost_delay", -1, 100, 20,
                      "Vacuum cost delay for autovacuum; -1 uses "
                      "vacuum_cost_delay"),
          {-1}),
      "ms");
  add(WithSpecialValues(
          IntegerKnob("autovacuum_vacuum_cost_limit", -1, 10000, -1,
                      "Vacuum cost amount for autovacuum; -1 uses "
                      "vacuum_cost_limit"),
          {-1}));
  add(WithSpecialValues(
          WithLogScale(IntegerKnob("autovacuum_work_mem", -1, 2097152, -1,
                                   "Memory for each autovacuum worker; "
                                   "-1 uses maintenance_work_mem")),
          {-1}),
      "kB");
  add(WithLogScale(IntegerKnob("autovacuum_freeze_max_age", 100000,
                               2000000000, 200000000,
                               "Age at which to force a table freeze")));

  // --------------------------------------------------------- vacuum
  add(WithSpecialValues(
          IntegerKnob("vacuum_cost_delay", 0, 100, 0,
                      "Cost-based vacuum sleep; 0 disables cost-based "
                      "vacuum delay entirely"),
          {0}),
      "ms");
  add(IntegerKnob("vacuum_cost_limit", 1, 10000, 200,
                  "Cost accumulated before vacuum naps"));
  add(IntegerKnob("vacuum_cost_page_hit", 0, 100, 1,
                  "Vacuum cost of a buffer-cache hit"));
  add(IntegerKnob("vacuum_cost_page_miss", 0, 100, 10,
                  "Vacuum cost of a buffer-cache miss"));
  add(IntegerKnob("vacuum_cost_page_dirty", 0, 100, 20,
                  "Vacuum cost of dirtying a page"));
  add(WithLogScale(IntegerKnob("vacuum_freeze_min_age", 1, 1000000000,
                               50000000,
                               "Age at which VACUUM freezes row versions")));
  add(WithLogScale(IntegerKnob("vacuum_freeze_table_age", 1, 2000000000,
                               150000000,
                               "Age at which VACUUM scans whole table")));

  // -------------------------------------------- connections & locks
  add(IntegerKnob("max_connections", 10, 1000, 100,
                  "Maximum concurrent client connections"));
  add(WithLogScale(IntegerKnob("max_files_per_process", 25, 50000, 1000,
                               "Simultaneously open files per server "
                               "process")));
  add(WithSpecialValues(
          IntegerKnob("max_prepared_transactions", 0, 1000, 0,
                      "Simultaneously prepared transactions; 0 "
                      "disables the prepared-transaction feature"),
          {0}));
  add(IntegerKnob("max_locks_per_transaction", 10, 1024, 64,
                  "Average object locks per transaction slot"));
  add(IntegerKnob("max_pred_locks_per_transaction", 10, 1024, 64,
                  "Average predicate locks per transaction slot"));
  add(WithLogScale(IntegerKnob("deadlock_timeout", 1, 10000, 1000,
                               "Wait before checking for deadlock")),
      "ms");

  // ------------------------------------------------- parallel query
  add(IntegerKnob("max_worker_processes", 0, 64, 8,
                  "Maximum background worker processes"));
  add(WithSpecialValues(
          IntegerKnob("max_parallel_workers_per_gather", 0, 64, 0,
                      "Workers per Gather node; 0 disables parallel "
                      "query execution"),
          {0}));
  add(RealKnob("parallel_setup_cost", 0.0, 100000.0, 1000.0,
               "Planner cost of launching parallel workers"));
  add(RealKnob("parallel_tuple_cost", 0.0, 10.0, 0.1,
               "Planner cost of transferring one parallel tuple"));
  add(WithLogScale(IntegerKnob("min_parallel_relation_size", 1, 262144, 1024,
                               "Minimum relation size considered for "
                               "parallel scan")),
      "8kB");

  // ----------------------------------------------------------- misc
  add(WithSpecialValues(
          WithLogScale(IntegerKnob("temp_file_limit", -1, 10485760, -1,
                                   "Per-session temp-file space; -1 "
                                   "means no limit")),
          {-1}),
      "kB");
  add(WithSpecialValues(
          IntegerKnob("old_snapshot_threshold", -1, 86400, -1,
                      "Snapshot age before 'snapshot too old'; -1 "
                      "disables the feature"),
          {-1}),
      "min");
  add(WithSpecialValues(
          WithLogScale(IntegerKnob("replacement_sort_tuples", 0, 1000000,
                                   150000,
                                   "Max tuples for replacement "
                                   "selection sort; 0 never uses it")),
          {0}));
  add(IntegerKnob("gin_fuzzy_search_limit", 0, 1000000, 0,
                  "Soft limit for GIN fuzzy searches"));
  add(WithLogScale(IntegerKnob("gin_pending_list_limit", 64, 1048576, 4096,
                               "GIN pending list size before cleanup")),
      "kB");
  add(IntegerKnob("max_stack_depth", 100, 7168, 2048,
                  "Maximum safe execution stack depth"),
      "kB");

  return knobs;
}

}  // namespace internal

ConfigSpace PostgresV96Catalog() {
  return ConfigSpace::Create(internal::BaseV96Knobs()).ValueOrDie();
}

ConfigSpace CatalogFor(PostgresVersion version) {
  return version == PostgresVersion::kV96 ? PostgresV96Catalog()
                                          : PostgresV136Catalog();
}

}  // namespace dbsim
}  // namespace llamatune
