#pragma once

#include <vector>

#include "src/common/rng.h"
#include "src/optimizer/search_space.h"

namespace llamatune {

/// \brief Latin Hypercube Sampling (McKay, Beckman & Conover 1979).
///
/// Generates `n` points such that, for every continuous dimension, the
/// range is divided into `n` equal strata and each stratum contains
/// exactly one sample. Categorical dimensions are stratified over their
/// categories (round-robin over a random permutation). Points are
/// snapped onto bucket grids where the space is quantized.
///
/// This is the space-filling design used to seed every optimizer's
/// first `n_init` iterations (paper Algorithm 1, line 2) and to build
/// the configuration corpora for importance ranking (paper §2.3.2).
std::vector<std::vector<double>> LatinHypercubeSample(const SearchSpace& space,
                                                      int n, Rng* rng);

}  // namespace llamatune
