#pragma once

#include <vector>

#include "src/common/rng.h"
#include "src/optimizer/search_space.h"

namespace llamatune {

/// \brief Draws one uniform random point from `space` (snapped onto any
/// bucket grids; categorical dims pick a uniform category).
std::vector<double> UniformSample(const SearchSpace& space, Rng* rng);

/// \brief Draws `n` i.i.d. uniform points.
std::vector<std::vector<double>> UniformSamples(const SearchSpace& space, int n,
                                                Rng* rng);

}  // namespace llamatune
