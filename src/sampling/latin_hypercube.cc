#include "src/sampling/latin_hypercube.h"

namespace llamatune {

std::vector<std::vector<double>> LatinHypercubeSample(const SearchSpace& space,
                                                      int n, Rng* rng) {
  int d = space.num_dims();
  std::vector<std::vector<double>> points(n, std::vector<double>(d, 0.0));
  for (int j = 0; j < d; ++j) {
    const SearchDim& dim = space.dim(j);
    std::vector<int> perm = rng->Permutation(n);
    for (int i = 0; i < n; ++i) {
      if (dim.type == SearchDim::Type::kCategorical) {
        // Round-robin over categories through a random permutation so
        // every category appears floor(n/k) or ceil(n/k) times.
        int cat = perm[i] % static_cast<int>(dim.num_categories);
        points[i][j] = static_cast<double>(cat);
      } else {
        double stratum_lo = static_cast<double>(perm[i]) / n;
        double u = stratum_lo + rng->Uniform(0.0, 1.0) / n;
        double v = dim.lo + u * (dim.hi - dim.lo);
        points[i][j] = space.Snap(j, v);
      }
    }
  }
  return points;
}

}  // namespace llamatune
