#include "src/sampling/uniform.h"

namespace llamatune {

std::vector<double> UniformSample(const SearchSpace& space, Rng* rng) {
  std::vector<double> point(space.num_dims());
  for (int j = 0; j < space.num_dims(); ++j) {
    const SearchDim& dim = space.dim(j);
    if (dim.type == SearchDim::Type::kCategorical) {
      point[j] = static_cast<double>(rng->UniformInt(0, dim.num_categories - 1));
    } else {
      point[j] = space.Snap(j, rng->Uniform(dim.lo, dim.hi));
    }
  }
  return point;
}

std::vector<std::vector<double>> UniformSamples(const SearchSpace& space, int n,
                                                Rng* rng) {
  std::vector<std::vector<double>> points;
  points.reserve(n);
  for (int i = 0; i < n; ++i) points.push_back(UniformSample(space, rng));
  return points;
}

}  // namespace llamatune
