#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/knobs/configuration.h"
#include "src/knobs/knob.h"

namespace llamatune {

/// \brief The full knob configuration space of a DBMS (paper's X_D).
///
/// Owns the ordered list of KnobSpecs and provides the unit-space
/// conversions used throughout the pipeline: every knob's domain can be
/// mapped to/from [0, 1] (min-max scaling for numerics — optionally in
/// the log domain — and equal-width binning for categoricals, paper
/// §3.3).
class ConfigSpace {
 public:
  /// Validates every knob and checks name uniqueness.
  static Result<ConfigSpace> Create(std::vector<KnobSpec> knobs);

  int num_knobs() const { return static_cast<int>(knobs_.size()); }
  const KnobSpec& knob(int i) const { return knobs_[i]; }
  const std::vector<KnobSpec>& knobs() const { return knobs_; }

  /// Index of the knob named `name`, or -1.
  int IndexOf(const std::string& name) const;

  /// Indices of all hybrid knobs (knobs with special values).
  const std::vector<int>& hybrid_knob_indices() const {
    return hybrid_indices_;
  }

  /// The DBMS's untuned configuration.
  Configuration DefaultConfiguration() const;

  /// Converts a unit-space coordinate in [0,1] to a physical knob value
  /// (rounded/typed). Categorical knobs bin [0,1] into equal-width
  /// buckets, one per category.
  double UnitToValue(int knob_idx, double unit) const;

  /// Inverse of UnitToValue (bucket midpoint for categoricals).
  double ValueToUnit(int knob_idx, double value) const;

  /// Converts a full unit-space point to a Configuration.
  Configuration UnitPointToConfiguration(const std::vector<double>& unit) const;

  /// Per-knob validity: value in domain, correctly typed.
  Status ValidateConfiguration(const Configuration& config) const;

  /// Human-readable "name=value" listing (for logs and examples).
  std::string ToString(const Configuration& config) const;

 private:
  explicit ConfigSpace(std::vector<KnobSpec> knobs);

  std::vector<KnobSpec> knobs_;
  std::map<std::string, int> index_;
  std::vector<int> hybrid_indices_;
};

}  // namespace llamatune
