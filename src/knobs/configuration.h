#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace llamatune {

/// \brief One concrete DBMS configuration: a value per knob.
///
/// Values are stored as doubles aligned with the owning ConfigSpace's
/// knob order: physical values for numeric knobs, category indices for
/// categorical knobs. A Configuration is a dumb value container; the
/// ConfigSpace interprets it.
class Configuration {
 public:
  Configuration() = default;
  explicit Configuration(std::vector<double> values)
      : values_(std::move(values)) {}

  int size() const { return static_cast<int>(values_.size()); }
  double operator[](int i) const { return values_[i]; }
  double& operator[](int i) { return values_[i]; }

  const std::vector<double>& values() const { return values_; }
  std::vector<double>& values() { return values_; }

  /// Stable hash of the stored values; used to seed per-evaluation
  /// simulator noise deterministically.
  uint64_t Hash() const;

  bool operator==(const Configuration& other) const {
    return values_ == other.values_;
  }

 private:
  std::vector<double> values_;
};

}  // namespace llamatune
