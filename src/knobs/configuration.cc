#include "src/knobs/configuration.h"

#include "src/common/rng.h"

namespace llamatune {

uint64_t Configuration::Hash() const { return HashDoubles(values_); }

}  // namespace llamatune
