#include "src/knobs/knob.h"

#include <algorithm>
#include <cmath>

#include "src/common/math_util.h"

namespace llamatune {

bool KnobSpec::IsSpecialValue(double value) const {
  for (double sv : special_values) {
    if (value == sv) return true;
  }
  return false;
}

double KnobSpec::RegularMin() const {
  if (!is_numeric()) return 0.0;
  double lo = min_value;
  if (!is_hybrid()) return lo;
  double step = (type == KnobType::kInteger) ? 1.0 : 0.0;
  // Specials conventionally sit at the bottom of the range; walk past
  // them. (A special value strictly inside the range does not move the
  // regular minimum.)
  bool moved = true;
  while (moved && lo <= max_value) {
    moved = false;
    if (IsSpecialValue(lo)) {
      lo += (step > 0.0 ? step : (max_value - min_value) * 1e-6);
      moved = true;
    }
  }
  return std::min(lo, max_value);
}

int64_t KnobSpec::NumDistinctValues() const {
  switch (type) {
    case KnobType::kInteger:
      return static_cast<int64_t>(std::llround(max_value - min_value)) + 1;
    case KnobType::kReal:
      return 0;
    case KnobType::kCategorical:
      return static_cast<int64_t>(categories.size());
  }
  return 0;
}

Status KnobSpec::Validate() const {
  if (name.empty()) return Status::InvalidArgument("knob has empty name");
  if (type == KnobType::kCategorical) {
    if (categories.size() < 2) {
      return Status::InvalidArgument("categorical knob '" + name +
                                     "' needs >= 2 categories");
    }
    if (default_value < 0 ||
        default_value >= static_cast<double>(categories.size())) {
      return Status::OutOfRange("categorical knob '" + name +
                                "' default index out of range");
    }
    if (!special_values.empty()) {
      return Status::InvalidArgument("categorical knob '" + name +
                                     "' cannot have special values");
    }
    return Status::OK();
  }
  if (!(min_value < max_value)) {
    return Status::InvalidArgument("knob '" + name +
                                   "' requires min_value < max_value");
  }
  if (default_value < min_value || default_value > max_value) {
    return Status::OutOfRange("knob '" + name + "' default out of range");
  }
  for (double sv : special_values) {
    if (sv < min_value || sv > max_value) {
      return Status::OutOfRange("knob '" + name +
                                "' special value out of range");
    }
  }
  if (log_scale && RegularMin() <= 0.0 && min_value <= 0.0) {
    // Log scaling operates on max(value, 1); a fully non-positive range
    // would degenerate.
    if (max_value <= 1.0) {
      return Status::InvalidArgument("knob '" + name +
                                     "' log_scale needs positive range");
    }
  }
  return Status::OK();
}

double KnobSpec::Canonicalize(double value) const {
  if (type == KnobType::kCategorical) {
    double idx = std::floor(value);
    return Clamp(idx, 0.0, static_cast<double>(categories.size()) - 1.0);
  }
  double v = Clamp(value, min_value, max_value);
  if (type == KnobType::kInteger) v = std::llround(v);
  return v;
}

KnobSpec IntegerKnob(std::string name, double min_value, double max_value,
                     double default_value, std::string description) {
  KnobSpec spec;
  spec.name = std::move(name);
  spec.type = KnobType::kInteger;
  spec.min_value = min_value;
  spec.max_value = max_value;
  spec.default_value = default_value;
  spec.description = std::move(description);
  return spec;
}

KnobSpec RealKnob(std::string name, double min_value, double max_value,
                  double default_value, std::string description) {
  KnobSpec spec;
  spec.name = std::move(name);
  spec.type = KnobType::kReal;
  spec.min_value = min_value;
  spec.max_value = max_value;
  spec.default_value = default_value;
  spec.description = std::move(description);
  return spec;
}

KnobSpec BoolKnob(std::string name, bool default_on, std::string description) {
  KnobSpec spec;
  spec.name = std::move(name);
  spec.type = KnobType::kCategorical;
  spec.categories = {"off", "on"};
  spec.default_value = default_on ? 1.0 : 0.0;
  spec.description = std::move(description);
  return spec;
}

KnobSpec CategoricalKnob(std::string name, std::vector<std::string> categories,
                         int default_index, std::string description) {
  KnobSpec spec;
  spec.name = std::move(name);
  spec.type = KnobType::kCategorical;
  spec.categories = std::move(categories);
  spec.default_value = static_cast<double>(default_index);
  spec.description = std::move(description);
  return spec;
}

KnobSpec WithSpecialValues(KnobSpec spec, std::vector<double> special_values) {
  spec.special_values = std::move(special_values);
  return spec;
}

KnobSpec WithLogScale(KnobSpec spec) {
  spec.log_scale = true;
  return spec;
}

}  // namespace llamatune
