#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace llamatune {

/// \brief The value domain class of a DBMS configuration knob.
enum class KnobType {
  kInteger,      ///< discrete numeric, e.g. shared_buffers (in 8kB pages)
  kReal,         ///< continuous numeric, e.g. geqo_selection_bias
  kCategorical,  ///< unordered finite choices, e.g. enable_seqscan
};

/// \brief Static description of one tunable DBMS knob.
///
/// A knob is *hybrid* (paper §4.1) when `special_values` is non-empty:
/// one or more sentinel values (usually 0 or -1 at the bottom of the
/// range) trigger behaviour discontinuous with the rest of the domain,
/// e.g. `backend_flush_after = 0` disables forced writeback entirely.
///
/// For numeric knobs, [min_value, max_value] is the *full* inclusive
/// range as exposed to an untreated optimizer — special values included
/// (matching how the paper's baselines tune the raw space). The
/// special-value biasing stage remaps part of the unit interval onto
/// the special value(s) and the remainder onto the regular range.
struct KnobSpec {
  std::string name;
  KnobType type = KnobType::kReal;

  /// Numeric domain (ignored for categorical knobs).
  double min_value = 0.0;
  double max_value = 1.0;

  /// Unit-space scaling in the log domain; for knobs whose plausible
  /// values span orders of magnitude (e.g. shared_buffers).
  bool log_scale = false;

  /// Categorical choices (ignored for numeric knobs); values are stored
  /// as indices into this vector.
  std::vector<std::string> categories;

  /// Sentinel values with discontinuous semantics (hybrid knobs).
  std::vector<double> special_values;

  /// Value used by the DBMS when untuned.
  double default_value = 0.0;

  /// Optional physical unit, e.g. "8kB", "us", "ms".
  std::string unit;

  /// One-line summary from the DBMS documentation.
  std::string description;

  bool is_numeric() const { return type != KnobType::kCategorical; }
  bool is_hybrid() const { return !special_values.empty(); }

  /// True iff `value` is one of the knob's special values.
  bool IsSpecialValue(double value) const;

  /// Smallest value of the *regular* (non-special) range. For hybrid
  /// knobs whose special values sit at the bottom of the range this is
  /// the first non-special value; otherwise min_value.
  double RegularMin() const;

  /// Number of distinct values: (max-min+1) for integers, the category
  /// count for categoricals, and 0 (meaning "continuum") for reals.
  int64_t NumDistinctValues() const;

  /// Structural sanity checks (range ordering, categories present,
  /// default in-domain, specials in-domain).
  Status Validate() const;

  /// Clamp + round `value` into this knob's domain (snap integers,
  /// clamp numerics, clamp categorical indices).
  double Canonicalize(double value) const;
};

/// \name Convenience factories
/// Builders for the common knob shapes used by the catalogs.
/// @{
KnobSpec IntegerKnob(std::string name, double min_value, double max_value,
                     double default_value, std::string description = "");
KnobSpec RealKnob(std::string name, double min_value, double max_value,
                  double default_value, std::string description = "");
KnobSpec BoolKnob(std::string name, bool default_on,
                  std::string description = "");
KnobSpec CategoricalKnob(std::string name, std::vector<std::string> categories,
                         int default_index, std::string description = "");
/// @}

/// Marks `spec` as hybrid with the given special values (chainable).
KnobSpec WithSpecialValues(KnobSpec spec, std::vector<double> special_values);

/// Marks `spec` as log-scaled in unit space (chainable).
KnobSpec WithLogScale(KnobSpec spec);

}  // namespace llamatune
