#include "src/knobs/config_space.h"

#include <cmath>
#include <sstream>

#include "src/common/math_util.h"

namespace llamatune {

namespace {

// Effective log-domain lower bound: a positive min is used directly;
// ranges that start at 0 or -1 (hybrid knobs) fall back to the first
// positive regular value, or 1 when even that is non-positive.
double LogLo(const KnobSpec& spec) {
  if (spec.min_value > 0.0) return spec.min_value;
  double regular = spec.RegularMin();
  if (regular > 0.0) return regular;
  return 1.0;
}

}  // namespace

ConfigSpace::ConfigSpace(std::vector<KnobSpec> knobs)
    : knobs_(std::move(knobs)) {
  for (int i = 0; i < static_cast<int>(knobs_.size()); ++i) {
    index_[knobs_[i].name] = i;
    if (knobs_[i].is_hybrid()) hybrid_indices_.push_back(i);
  }
}

Result<ConfigSpace> ConfigSpace::Create(std::vector<KnobSpec> knobs) {
  if (knobs.empty()) {
    return Status::InvalidArgument("config space needs at least one knob");
  }
  std::map<std::string, int> seen;
  for (const KnobSpec& spec : knobs) {
    Status st = spec.Validate();
    if (!st.ok()) return st;
    if (seen.count(spec.name) > 0) {
      return Status::AlreadyExists("duplicate knob name '" + spec.name + "'");
    }
    seen[spec.name] = 1;
  }
  return ConfigSpace(std::move(knobs));
}

int ConfigSpace::IndexOf(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? -1 : it->second;
}

Configuration ConfigSpace::DefaultConfiguration() const {
  std::vector<double> values(knobs_.size());
  for (size_t i = 0; i < knobs_.size(); ++i) {
    values[i] = knobs_[i].default_value;
  }
  return Configuration(std::move(values));
}

double ConfigSpace::UnitToValue(int knob_idx, double unit) const {
  const KnobSpec& spec = knobs_[knob_idx];
  double u = Clamp(unit, 0.0, 1.0);
  if (spec.type == KnobType::kCategorical) {
    // Equal-width bins over [0,1]; u == 1 falls in the last bin.
    int n = static_cast<int>(spec.categories.size());
    int bin = static_cast<int>(std::floor(u * n));
    if (bin >= n) bin = n - 1;
    return static_cast<double>(bin);
  }
  double value;
  if (spec.log_scale) {
    double lo = LogLo(spec);
    double log_v = Rescale(u, 0.0, 1.0, std::log(lo), std::log(spec.max_value));
    value = std::exp(log_v);
    // The sub-1 head of the range (e.g. special value 0 or -1) maps
    // from u == 0 exactly.
    if (u == 0.0) value = spec.min_value;
  } else {
    value = Rescale(u, 0.0, 1.0, spec.min_value, spec.max_value);
  }
  return spec.Canonicalize(value);
}

double ConfigSpace::ValueToUnit(int knob_idx, double value) const {
  const KnobSpec& spec = knobs_[knob_idx];
  if (spec.type == KnobType::kCategorical) {
    int n = static_cast<int>(spec.categories.size());
    double idx = Clamp(std::floor(value), 0.0, n - 1.0);
    return (idx + 0.5) / n;  // bucket midpoint
  }
  if (spec.log_scale) {
    double lo = LogLo(spec);
    double v = std::max(value, lo);
    return Clamp(Rescale(std::log(v), std::log(lo), std::log(spec.max_value),
                         0.0, 1.0),
                 0.0, 1.0);
  }
  return Clamp(Rescale(value, spec.min_value, spec.max_value, 0.0, 1.0), 0.0,
               1.0);
}

Configuration ConfigSpace::UnitPointToConfiguration(
    const std::vector<double>& unit) const {
  std::vector<double> values(knobs_.size());
  for (size_t i = 0; i < knobs_.size(); ++i) {
    values[i] = UnitToValue(static_cast<int>(i), unit[i]);
  }
  return Configuration(std::move(values));
}

Status ConfigSpace::ValidateConfiguration(const Configuration& config) const {
  if (config.size() != num_knobs()) {
    return Status::InvalidArgument("configuration size mismatch");
  }
  for (int i = 0; i < num_knobs(); ++i) {
    const KnobSpec& spec = knobs_[i];
    double v = config[i];
    if (spec.type == KnobType::kCategorical) {
      if (v < 0 || v >= static_cast<double>(spec.categories.size()) ||
          v != std::floor(v)) {
        return Status::OutOfRange("knob '" + spec.name +
                                  "' category index invalid");
      }
    } else {
      if (v < spec.min_value || v > spec.max_value) {
        return Status::OutOfRange("knob '" + spec.name + "' out of range");
      }
      if (spec.type == KnobType::kInteger && v != std::llround(v)) {
        return Status::InvalidArgument("knob '" + spec.name +
                                       "' must be integral");
      }
    }
  }
  return Status::OK();
}

std::string ConfigSpace::ToString(const Configuration& config) const {
  std::ostringstream out;
  for (int i = 0; i < num_knobs() && i < config.size(); ++i) {
    const KnobSpec& spec = knobs_[i];
    if (i > 0) out << ", ";
    out << spec.name << "=";
    if (spec.type == KnobType::kCategorical) {
      out << spec.categories[static_cast<int>(config[i])];
    } else {
      out << config[i];
    }
  }
  return out.str();
}

}  // namespace llamatune
