// Integrating LlamaTune with your own system: implement
// ObjectiveFunction over your knob catalog and the whole pipeline
// (projection, special-value biasing, bucketization, any optimizer)
// composes unchanged.
//
// The "system" here is a toy in-process LRU cache whose hit rate
// depends on a handful of knobs — small enough to read in a minute,
// structured exactly like a real integration would be.

#include <cstdio>

#include "src/harness/tuner.h"

using namespace llamatune;

namespace {

// Step 1: describe the tunable surface. Hybrid knobs declare their
// special values so biasing can find them.
ConfigSpace MyCacheKnobs() {
  std::vector<KnobSpec> knobs;
  knobs.push_back(WithLogScale(
      IntegerKnob("cache_entries", 64, 1048576, 4096, "LRU capacity")));
  knobs.push_back(IntegerKnob("shard_count", 1, 64, 4, "hash shards"));
  knobs.push_back(WithSpecialValues(
      IntegerKnob("ttl_seconds", 0, 86400, 300,
                  "entry time-to-live; 0 disables expiry entirely"),
      {0}));
  knobs.push_back(CategoricalKnob("eviction", {"lru", "fifo", "random"}, 0,
                                  "eviction policy"));
  knobs.push_back(RealKnob("admission_probability", 0.05, 1.0, 1.0,
                           "probabilistic admission filter"));
  // Padding knobs that barely matter — every real system has them.
  for (int i = 0; i < 12; ++i) {
    knobs.push_back(RealKnob("aux_" + std::to_string(i), 0.0, 1.0, 0.5));
  }
  return ConfigSpace::Create(std::move(knobs)).ValueOrDie();
}

// Step 2: implement the objective — run your benchmark under the
// configuration and report the metric (and a crash flag for configs
// that cannot run at all).
class MyCache : public ObjectiveFunction {
 public:
  MyCache() : space_(MyCacheKnobs()) {}

  EvalResult Evaluate(const Configuration& config) override {
    KnobAt at(space_, config);
    EvalResult result;
    double entries = at("cache_entries");
    double shards = at("shard_count");
    if (entries / shards < 16) {  // degenerate sharding: won't start
      result.crashed = true;
      return result;
    }
    double hit = entries / (entries + 50000.0);     // capacity effect
    double contention = 1.0 / (1.0 + shards * 0.3);  // sharding effect
    double ttl = at("ttl_seconds");
    double expiry_miss = ttl == 0.0 ? 0.0 : 0.08 * (300.0 / (ttl + 300.0));
    double policy = at("eviction") == 0 ? 1.0 : 0.93;  // LRU wins
    double admission = 0.9 + 0.1 * at("admission_probability");
    result.value =
        100000.0 * (hit - expiry_miss) * policy * admission /
        (1.0 + contention);
    return result;
  }

  const ConfigSpace& config_space() const override { return space_; }

 private:
  struct KnobAt {
    KnobAt(const ConfigSpace& s, const Configuration& c)
        : space(s), config(c) {}
    double operator()(const char* name) const {
      return config[space.IndexOf(name)];
    }
    const ConfigSpace& space;
    const Configuration& config;
  };
  ConfigSpace space_;
};

}  // namespace

int main() {
  MyCache cache;
  std::printf("Tuning a custom system: %d knobs, %zu hybrid\n",
              cache.config_space().num_knobs(),
              cache.config_space().hybrid_knob_indices().size());

  // Step 3: hand the objective to TunerBuilder. A smaller projection
  // fits the smaller space (rule of thumb: ~10-20%% of the knob count,
  // paper §3.4) — the whole pipeline is just a different key.
  auto built = harness::TunerBuilder()
                   .Objective(&cache)
                   .Optimizer("smac")
                   .Adapter("hesbo4+svb0.2+bucket10000")
                   .Seed(1)
                   .Iterations(60)
                   .Build();
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
    return 1;
  }
  SessionResult result = (*built)->Run();

  std::printf("default objective : %8.0f\n", result.default_performance);
  std::printf("tuned objective   : %8.0f (%+.1f%%)\n",
              result.best_performance,
              100.0 * (result.best_performance / result.default_performance -
                       1.0));
  std::printf("best config       : %s\n",
              cache.config_space().ToString(result.best_config).c_str());
  return 0;
}
