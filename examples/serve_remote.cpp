// The wire front-end: TuningService behind a TCP line protocol.
//
// Two modes in one binary:
//
//   --serve   Run a TuningServer until SIGINT/SIGTERM. Prints the
//             bound port (and writes it to --port-file for scripted
//             startup), autosaves sessions periodically when
//             --autosave-dir is set, and evicts idle sessions when
//             --idle-eviction-ms is set. This is the process the
//             crash/kill/resume integration test kills -9.
//
//   (default) Self-contained demo: starts a server in-process on an
//             ephemeral port, connects a TuningClient over real
//             sockets, runs a caller-measured session plus a
//             server-driven workload session, checkpoints over the
//             wire and verifies the remote trajectory matches an
//             in-process run bit-for-bit.
//
// Build & run:  cmake --build build && ./build/examples/serve_remote
// Server:       ./build/examples/serve_remote --serve --port 7421

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/fault_injection.h"
#include "src/knobs/config_space.h"
#include "src/net/tuning_client.h"
#include "src/net/tuning_server.h"
#include "src/service/tuning_service.h"

using namespace llamatune;

namespace {

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

int RunServer(const net::TuningServerOptions& options,
              const std::string& port_file) {
  net::TuningServer server(options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("[serve_remote] listening on %s:%u\n", options.host.c_str(),
              server.port());
  std::fflush(stdout);
  if (!port_file.empty()) {
    // tmp + rename so a watcher never reads a half-written port.
    std::string tmp = port_file + ".tmp";
    FILE* out = std::fopen(tmp.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", tmp.c_str());
      return 1;
    }
    std::fprintf(out, "%u\n", server.port());
    std::fclose(out);
    std::rename(tmp.c_str(), port_file.c_str());
  }

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  // Two ways out of this loop: a signal (SIGTERM/SIGINT sets g_stop)
  // or a wire kDrain (the server leaves Running on its own). Either
  // way Stop() finishes the drain — in-flight work completes, every
  // session autosaves durably — and the process exits 0 so a
  // supervisor restarts it cleanly.
  while (!g_stop && server.running()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("[serve_remote] draining\n");
  std::fflush(stdout);
  server.Stop();  // completes in-flight work, final autosave sweep
  std::printf("[serve_remote] stopped\n");
  return 0;
}

// A checkpoint's "state" line carries accumulated wall-clock optimizer
// seconds — the only non-deterministic bytes in an otherwise bit-exact
// trajectory. Zero that token so equality means "identical history".
std::string Trajectory(const std::string& checkpoint) {
  std::istringstream in(checkpoint);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("state ", 0) == 0) {
      line = line.substr(0, line.find_last_of(' ')) + " <wall-clock>";
    }
    out << line << '\n';
  }
  return out.str();
}

double Measure(const Configuration& config) {
  double x = config[0] / 100.0;
  double y = config[1];
  return 1000.0 - 900.0 * ((x - 0.3) * (x - 0.3) + (y - 0.6) * (y - 0.6));
}

net::WireSessionSpec ExternalSpec() {
  net::WireSessionSpec spec;
  spec.space_knobs = {IntegerKnob("cache_mb", 0, 100, 50),
                      RealKnob("target_ratio", 0.0, 1.0, 0.5)};
  spec.optimizer_key = "smac";
  spec.adapter_key = "identity";
  spec.seed = 7;
  spec.num_iterations = 15;
  return spec;
}

int RunDemo() {
  net::TuningServerOptions options;
  net::TuningServer server(options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("[demo] server on 127.0.0.1:%u\n", server.port());

  net::TuningClient client;
  if (!client.Connect("127.0.0.1", server.port()).ok() ||
      !client.Hello("demo-tenant").ok()) {
    std::fprintf(stderr, "connect failed\n");
    return 1;
  }

  // 1. A caller-measured session: the server hands out configurations,
  //    this process measures them (stand-in for a real DBMS).
  if (!client.CreateSession("external", ExternalSpec()).ok()) return 1;
  while (true) {
    Result<Trial> trial = client.Ask("external");
    if (!trial.ok()) break;  // budget exhausted
    TrialResult result;
    result.trial_id = trial->id;
    result.value = Measure(trial->config);
    if (!client.Tell("external", result).ok()) return 1;
  }

  // 2. A workload-backed session the server drives to completion in
  //    the background while we poll.
  net::WireSessionSpec sim;
  sim.workload = "YCSB-A";
  sim.optimizer_key = "random";
  sim.adapter_key = "llamatune";
  sim.seed = 11;
  sim.num_iterations = 8;
  if (!client.CreateSession("sim", sim).ok()) return 1;
  if (!client.StartDrive("sim").ok()) return 1;
  while (true) {
    Result<net::WireSessionStatus> status = client.GetStatus("sim");
    if (!status.ok()) return 1;
    if (status->status.finished && !status->driving) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  std::printf("\n%-10s %5s %9s %9s\n", "session", "iters", "default", "best");
  Result<std::vector<net::WireSessionStatus>> list = client.ListSessions();
  if (!list.ok()) return 1;
  for (const net::WireSessionStatus& s : *list) {
    std::printf("%-10s %3d/%d %9.1f %9.1f\n", s.status.name.c_str(),
                s.status.iterations_run, s.status.num_iterations,
                s.status.default_performance, s.status.best_performance);
  }

  // 3. The determinism pin: the wire-driven external session's
  //    checkpoint equals an in-process run of the same spec.
  Result<std::string> remote = client.Checkpoint("external");
  if (!remote.ok()) return 1;
  ConfigSpace space =
      ConfigSpace::Create(ExternalSpec().space_knobs).ValueOrDie();
  service::TuningService local;
  service::SessionSpec spec;
  spec.space = &space;
  spec.optimizer_key = "smac";
  spec.adapter_key = "identity";
  spec.seed = 7;
  spec.num_iterations = 15;
  local.CreateSession("ref", spec);
  while (true) {
    Result<Trial> trial = local.Ask("ref");
    if (!trial.ok()) break;
    TrialResult result;
    result.trial_id = trial->id;
    result.value = Measure(trial->config);
    local.Tell("ref", result);
  }
  bool identical =
      Trajectory(*remote) == Trajectory(*local.Checkpoint("ref"));
  std::printf("\n[demo] wire-driven == in-process checkpoint: %s\n",
              identical ? "yes (bit-for-bit)" : "NO — BUG");

  client.Close("external");
  client.Close("sim");
  server.Stop();
  return identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Crash-recovery and chaos tests arm seeded fault schedules in the
  // forked server through this env var; unset, injection stays off.
  FaultInjection::ConfigureFromEnv("LLAMATUNE_FAULTS");
  bool serve = false;
  std::string port_file;
  net::TuningServerOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--serve") {
      serve = true;
    } else if (arg == "--host") {
      options.host = next();
    } else if (arg == "--port") {
      options.port = static_cast<uint16_t>(std::atoi(next()));
    } else if (arg == "--port-file") {
      port_file = next();
    } else if (arg == "--autosave-dir") {
      options.autosave_dir = next();
    } else if (arg == "--autosave-interval-ms") {
      options.autosave_interval_ms = std::atol(next());
    } else if (arg == "--idle-eviction-ms") {
      options.idle_eviction_ms = std::atol(next());
    } else if (arg == "--max-sessions-per-tenant") {
      options.max_sessions_per_tenant = std::atoi(next());
    } else if (arg == "--max-pending") {
      options.max_pending_requests = std::atoi(next());
    } else if (arg == "--drain-deadline-ms") {
      options.drain_deadline_ms = std::atol(next());
    } else if (arg == "--request-deadline-ms") {
      options.default_request_deadline_ms = std::atol(next());
    } else if (arg == "--resume-on-start") {
      // Hot restart: revive every autosaved session from a drained
      // predecessor sharing this --autosave-dir.
      options.resume_saved_on_start = true;
    } else {
      std::fprintf(stderr,
                   "usage: serve_remote [--serve] [--host H] [--port P] "
                   "[--port-file F] [--autosave-dir D] "
                   "[--autosave-interval-ms N] [--idle-eviction-ms N] "
                   "[--max-sessions-per-tenant N] [--max-pending N] "
                   "[--drain-deadline-ms N] [--request-deadline-ms N] "
                   "[--resume-on-start]\n");
      return 2;
    }
  }
  return serve ? RunServer(options, port_file) : RunDemo();
}
