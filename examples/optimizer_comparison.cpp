// LlamaTune is optimizer-agnostic (paper §6.4): the same adapter
// pipeline wraps SMAC (random-forest BO), GP-BO (Gaussian-process BO),
// DDPG (reinforcement learning) and the search-based baselines. This
// example races every optimizer registered in OptimizerRegistry, with
// and without LlamaTune, on YCSB-B — registering a new backend makes
// it show up here with no further changes.

#include <cstdio>
#include <string>

#include "src/harness/experiment.h"
#include "src/optimizer/optimizer_registry.h"

using namespace llamatune;
using namespace llamatune::harness;

int main() {
  std::printf("YCSB-B, 60 iterations, 3 seeds, throughput target\n\n");
  std::printf("%-12s | %-22s | %-22s | gain\n", "Opt",
              "vanilla (reqs/sec)", "LlamaTune (reqs/sec)");

  // Keys() lists canonical backends only (aliases excluded), so every
  // registered optimizer runs exactly once.
  for (const std::string& key : OptimizerRegistry::Global().Keys()) {
    ExperimentSpec spec;
    spec.workload = dbsim::YcsbB();
    spec.num_iterations = 60;
    spec.num_seeds = 3;
    spec.optimizer_key = key;

    spec.adapter_key = "identity";
    MultiSeedResult vanilla = RunExperiment(spec);
    spec.adapter_key = "llamatune";
    MultiSeedResult llama = RunExperiment(spec);
    Comparison cmp = Compare(vanilla, llama);

    std::printf("%-12s | %22.0f | %22.0f | %+6.2f%%\n", key.c_str(),
                vanilla.mean_final_measured, llama.mean_final_measured,
                cmp.mean_improvement_pct);
  }

  std::printf(
      "\nThe adapter never touches optimizer internals: biasing and\n"
      "projection happen after each suggestion (paper design goal).\n");
  return 0;
}
