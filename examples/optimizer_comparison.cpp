// LlamaTune is optimizer-agnostic (paper §6.4): the same adapter
// wraps SMAC (random-forest BO), GP-BO (Gaussian-process BO) and DDPG
// (reinforcement learning). This example races all three, with and
// without LlamaTune, on YCSB-B.

#include <cstdio>

#include "src/harness/experiment.h"

using namespace llamatune;
using namespace llamatune::harness;

int main() {
  std::printf("YCSB-B, 60 iterations, 3 seeds, throughput target\n\n");
  std::printf("%-8s | %-22s | %-22s | gain\n", "Opt", "vanilla (reqs/sec)",
              "LlamaTune (reqs/sec)");

  for (auto kind :
       {OptimizerKind::kSmac, OptimizerKind::kGpBo, OptimizerKind::kDdpg,
        OptimizerKind::kBestConfig, OptimizerKind::kRandom}) {
    ExperimentSpec spec;
    spec.workload = dbsim::YcsbB();
    spec.num_iterations = 60;
    spec.num_seeds = 3;
    spec.optimizer = kind;

    spec.use_llamatune = false;
    MultiSeedResult vanilla = RunExperiment(spec);
    spec.use_llamatune = true;
    MultiSeedResult llama = RunExperiment(spec);
    Comparison cmp = Compare(vanilla, llama);

    std::printf("%-8s | %22.0f | %22.0f | %+6.2f%%\n", OptimizerKindName(kind),
                vanilla.mean_final_measured, llama.mean_final_measured,
                cmp.mean_improvement_pct);
  }

  std::printf(
      "\nThe adapter never touches optimizer internals: biasing and\n"
      "projection happen after each suggestion (paper design goal).\n");
  return 0;
}
