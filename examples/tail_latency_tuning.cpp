// Tail-latency tuning (paper §6.2 second scenario): fix the request
// rate and minimize 95th-percentile latency instead of maximizing
// throughput. The session machinery is unchanged — the objective
// declares maximize() == false and everything else follows.

#include <cstdio>

#include "src/core/llamatune_adapter.h"
#include "src/core/tuning_session.h"
#include "src/dbsim/simulated_postgres.h"
#include "src/optimizer/smac.h"

using namespace llamatune;

int main() {
  dbsim::SimulatedPostgresOptions db_options;
  db_options.target = dbsim::TuningTarget::kP95Latency;
  db_options.fixed_rate = 1200.0;  // req/s, ~half the tuned capacity
  dbsim::SimulatedPostgres db(dbsim::TpcC(), db_options);

  std::printf("Minimizing p95 latency of TPC-C at a fixed %.0f req/s\n",
              db_options.fixed_rate);

  LlamaTuneAdapter adapter(&db.config_space(), {});
  SmacOptimizer optimizer(adapter.search_space(), {}, /*seed=*/7);
  SessionOptions session_options;
  session_options.num_iterations = 100;
  TuningSession session(&db, &adapter, &optimizer, session_options);
  SessionResult result = session.Run();

  std::printf("\ndefault p95 : %8.2f ms\n", result.default_performance);
  std::printf("best p95    : %8.2f ms  (-%.1f%%)\n", result.best_performance,
              100.0 * (1.0 - result.best_performance /
                                 result.default_performance));

  // Show the improvement trajectory.
  auto curve = result.kb.BestSoFarMeasured();
  std::printf("\nbest-so-far p95 (ms):\n");
  for (size_t i = 9; i < curve.size(); i += 10) {
    std::printf("  iter %3zu: %8.2f\n", i + 1, curve[i]);
  }

  // Crashed configurations (OOM etc.) are penalized, not fatal:
  int crashes = 0;
  for (int i = 0; i < result.kb.size(); ++i) {
    if (result.kb.record(i).crashed) ++crashes;
  }
  std::printf("\ncrashed configurations penalized along the way: %d\n",
              crashes);
  return 0;
}
