// Tail-latency tuning (paper §6.2 second scenario): fix the request
// rate and minimize 95th-percentile latency instead of maximizing
// throughput. The session machinery is unchanged — the objective
// declares maximize() == false and everything else follows.

#include <cstdio>

#include "src/harness/tuner.h"

using namespace llamatune;

int main() {
  const double fixed_rate = 1200.0;  // req/s, ~half the tuned capacity
  std::printf("Minimizing p95 latency of TPC-C at a fixed %.0f req/s\n",
              fixed_rate);

  auto built = harness::TunerBuilder()
                   .Workload(dbsim::TpcC())
                   .Target(dbsim::TuningTarget::kP95Latency, fixed_rate)
                   .Optimizer("smac")
                   .Adapter("llamatune")
                   .Seed(7)
                   .Iterations(100)
                   .Build();
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
    return 1;
  }
  SessionResult result = (*built)->Run();

  std::printf("\ndefault p95 : %8.2f ms\n", result.default_performance);
  std::printf("best p95    : %8.2f ms  (-%.1f%%)\n", result.best_performance,
              100.0 * (1.0 - result.best_performance /
                                 result.default_performance));

  // Show the improvement trajectory.
  auto curve = result.kb.BestSoFarMeasured();
  std::printf("\nbest-so-far p95 (ms):\n");
  for (size_t i = 9; i < curve.size(); i += 10) {
    std::printf("  iter %3zu: %8.2f\n", i + 1, curve[i]);
  }

  // Crashed configurations (OOM etc.) are penalized, not fatal:
  int crashes = 0;
  for (int i = 0; i < result.kb.size(); ++i) {
    if (result.kb.record(i).crashed) ++crashes;
  }
  std::printf("\ncrashed configurations penalized along the way: %d\n",
              crashes);
  return 0;
}
