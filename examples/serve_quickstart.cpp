// The serve-style entry point: one TuningService process hosting many
// concurrent tuning jobs for systems it cannot call into.
//
// The scenario: a fleet of eight "external DBMS instances" (stand-ins
// for real databases living behind their own control planes). For each
// one we open a named session with its own optimizer/adapter/seed,
// then drive all eight through the ask/tell protocol from separate
// threads — the service hands out configurations to try, the caller
// measures them wherever the DBMS actually runs, and tells the results
// back. Midway we checkpoint one job to a text blob, close it, resume
// it under a new name, and show the resumed trajectory finishing
// exactly as the uninterrupted ones do.
//
// Build & run:  cmake --build build && ./build/examples/serve_quickstart

#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/service/tuning_service.h"

using namespace llamatune;

namespace {

// The knob surface shared by the fleet (a real deployment would load
// each DBMS's own catalog).
ConfigSpace FleetKnobs() {
  std::vector<KnobSpec> knobs;
  knobs.push_back(IntegerKnob("shared_buffers_mb", 16, 8192, 128));
  knobs.push_back(IntegerKnob("work_mem_mb", 1, 512, 4));
  knobs.push_back(RealKnob("checkpoint_completion_target", 0.1, 0.9, 0.5));
  knobs.push_back(IntegerKnob("max_parallel_workers", 0, 16, 2));
  return ConfigSpace::Create(std::move(knobs)).ValueOrDie();
}

// Stand-in for "run the workload on instance `job` and measure": each
// instance has a different sweet spot. In production this is the only
// piece you write — everything else is the service.
double MeasureOnInstance(int job, const Configuration& config) {
  double buffers = config[0] / 8192.0;
  double work_mem = config[1] / 512.0;
  double target = config[2];
  double workers = config[3] / 16.0;
  double best_buffers = 0.25 + 0.08 * job;
  double best_workers = 0.9 - 0.09 * job;
  double score = 1800.0;
  score -= 2200.0 * (buffers - best_buffers) * (buffers - best_buffers);
  score -= 600.0 * (workers - best_workers) * (workers - best_workers);
  score -= 250.0 * (target - 0.7) * (target - 0.7);
  score += 120.0 * work_mem * (1.0 - work_mem);
  return score + 10.0 * job;
}

// Drives one session to completion: ask, measure, tell, repeat.
void DriveJob(service::TuningService& svc, const std::string& name, int job) {
  while (true) {
    Result<Trial> trial = svc.Ask(name);
    if (!trial.ok()) break;  // budget exhausted
    TrialResult result;
    result.trial_id = trial->id;
    result.value = MeasureOnInstance(job, trial->config);
    svc.Tell(name, result);
  }
}

}  // namespace

int main() {
  ConfigSpace space = FleetKnobs();
  service::TuningService svc;

  // Eight jobs, a mix of optimizers and adapters, all served at once.
  const char* optimizers[] = {"smac", "gpbo", "random", "smac",
                              "gpbo", "random", "smac", "gpbo"};
  const char* adapters[] = {"identity", "hesbo2+svb0.2+bucket10000",
                            "identity", "hesbo3+svb0.2",
                            "identity", "hesbo2+svb0.2+bucket10000",
                            "hesbo3",   "identity"};
  const int kJobs = 8;
  const int kIterations = 30;
  for (int job = 0; job < kJobs; ++job) {
    service::SessionSpec spec;
    spec.space = &space;  // external: the service never evaluates
    spec.optimizer_key = optimizers[job];
    spec.adapter_key = adapters[job];
    spec.seed = 1000 + job;
    spec.num_iterations = kIterations;
    Status created = svc.CreateSession("dbms-" + std::to_string(job), spec);
    if (!created.ok()) {
      std::fprintf(stderr, "create failed: %s\n", created.ToString().c_str());
      return 1;
    }
  }
  std::printf("[serve] %d sessions open\n", svc.session_count());

  // Drive every job halfway, concurrently.
  {
    std::vector<std::thread> workers;
    for (int job = 0; job < kJobs; ++job) {
      workers.emplace_back([&svc, job] {
        std::string name = "dbms-" + std::to_string(job);
        for (int round = 0; round < kIterations / 2; ++round) {
          Result<Trial> trial = svc.Ask(name);
          if (!trial.ok()) return;
          TrialResult result;
          result.trial_id = trial->id;
          result.value = MeasureOnInstance(job, trial->config);
          svc.Tell(name, result);
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
  }

  // Checkpoint job 5 mid-flight, close it, resume under a new name —
  // exactly what a controller restart looks like.
  Result<std::string> checkpoint = svc.Checkpoint("dbms-5");
  if (!checkpoint.ok()) {
    std::fprintf(stderr, "checkpoint failed\n");
    return 1;
  }
  svc.Close("dbms-5");
  {
    service::SessionSpec spec;
    spec.space = &space;
    spec.optimizer_key = optimizers[5];
    spec.adapter_key = adapters[5];
    spec.seed = 1000 + 5;
    spec.num_iterations = kIterations;
    Status resumed = svc.Resume("dbms-5-resumed", spec, *checkpoint);
    if (!resumed.ok()) {
      std::fprintf(stderr, "resume failed: %s\n", resumed.ToString().c_str());
      return 1;
    }
  }
  std::printf("[serve] dbms-5 checkpointed (%zu bytes) and resumed\n",
              checkpoint->size());

  // Finish every job (the resumed one included), again concurrently.
  {
    std::vector<std::thread> workers;
    for (int job = 0; job < kJobs; ++job) {
      std::string name = job == 5 ? "dbms-5-resumed"
                                  : "dbms-" + std::to_string(job);
      workers.emplace_back(
          [&svc, name, job] { DriveJob(svc, name, job); });
    }
    for (std::thread& worker : workers) worker.join();
  }

  // Status table.
  std::printf("\n%-16s %-6s %-22s %5s %8s %9s\n", "session", "opt",
              "adapter", "iters", "default", "best");
  for (const service::SessionStatus& s : svc.ListSessions()) {
    std::printf("%-16s %-6s %-22s %3d/%d %8.1f %9.1f\n", s.name.c_str(),
                s.optimizer_key.c_str(), s.adapter_key.c_str(),
                s.iterations_run, s.num_iterations, s.default_performance,
                s.best_performance);
  }

  // Determinism: an uninterrupted solo run of job 5 must land exactly
  // where the checkpoint-resumed, concurrently driven one did.
  {
    service::TuningService solo;
    service::SessionSpec spec;
    spec.space = &space;
    spec.optimizer_key = optimizers[5];
    spec.adapter_key = adapters[5];
    spec.seed = 1000 + 5;
    spec.num_iterations = kIterations;
    solo.CreateSession("solo", spec);
    DriveJob(solo, "solo", 5);
    Result<SessionResult> solo_result = solo.Close("solo");
    Result<SessionResult> resumed_result = svc.Close("dbms-5-resumed");
    bool identical = solo_result.ok() && resumed_result.ok() &&
                     solo_result->best_performance ==
                         resumed_result->best_performance &&
                     solo_result->kb.size() == resumed_result->kb.size();
    std::printf("\n[serve] resume == uninterrupted run: %s\n",
                identical ? "yes (bit-for-bit)" : "NO — BUG");
    if (!identical) return 1;
  }
  return 0;
}
