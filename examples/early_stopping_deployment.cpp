// Deployment scenario from the paper's appendix: stop the tuning
// session early once the best configuration stops improving, trading
// a little final performance for most of the time budget back.

#include <cstdio>

#include "src/harness/tuner.h"

using namespace llamatune;

namespace {

SessionResult RunWithPolicy(double min_improvement_pct, int patience,
                            bool use_policy) {
  harness::TunerBuilder builder;
  builder.Workload(dbsim::Seats())
      .Optimizer("smac")
      .Adapter("llamatune")
      .Seed(42)
      .Iterations(100);
  if (use_policy) {
    builder.EarlyStopping(
        EarlyStoppingPolicy(min_improvement_pct, patience));
  }
  return (*builder.Build())->Run();
}

}  // namespace

int main() {
  std::printf("SEATS, LlamaTune(SMAC): early stopping policies "
              "(min-improvement %%, patience)\n\n");

  SessionResult full = RunWithPolicy(0, 0, false);
  std::printf("%-14s best %8.0f reqs/sec after %3d iterations\n",
              "full budget", full.best_performance, full.iterations_run);

  struct Policy {
    double pct;
    int patience;
  };
  for (Policy p : {Policy{0.5, 10}, Policy{1.0, 10}, Policy{1.0, 20}}) {
    SessionResult r = RunWithPolicy(p.pct, p.patience, true);
    std::printf("(%.1f%%, %2d)     best %8.0f reqs/sec after %3d iterations "
                "(%.0f%% of full budget, %.1f%% of full perf)\n",
                p.pct, p.patience, r.best_performance, r.iterations_run,
                100.0 * r.iterations_run / full.iterations_run,
                100.0 * r.best_performance / full.best_performance);
  }

  std::printf("\nEach iteration is a 5-10 minute workload run in production "
              "— stopping 60 iterations early saves hours per tuning "
              "session.\n");
  return 0;
}
