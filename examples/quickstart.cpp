// Quickstart: tune the simulated PostgreSQL v9.6 for YCSB-A with the
// full LlamaTune pipeline (HeSBO-16 projection, 20% special-value
// biasing, K=10,000 bucketization) driving a SMAC optimizer.
//
//   build/examples/quickstart
//
// This is the minimal end-to-end use of the public API: name a
// workload, an optimizer, and an adapter pipeline by registry key, and
// TunerBuilder wires the whole stack. "llamatune" is an alias for
// "hesbo16+svb0.2+bucket10000" — swap in any other stage composition
// ("rembo8", "identity+svb0.2", ...) without touching other code.

#include <cstdio>

#include "src/dbsim/pg_conf.h"
#include "src/harness/tuner.h"

using namespace llamatune;
using harness::TunerBuilder;

int main() {
  auto built = TunerBuilder()
                   .Workload(dbsim::YcsbA())
                   .Optimizer("smac")
                   .Adapter("llamatune")
                   .Seed(42)
                   .Iterations(100)  // the first 10 are the LHS design
                   .Build();
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
    return 1;
  }
  harness::Tuner& tuner = **built;

  const dbsim::SimulatedPostgres& db =
      static_cast<const dbsim::SimulatedPostgres&>(tuner.objective());
  std::printf("Tuning %s on simulated PostgreSQL v9.6 (%d knobs, %zu "
              "hybrid)\n",
              db.workload().name.c_str(), db.config_space().num_knobs(),
              db.config_space().hybrid_knob_indices().size());
  std::printf("Optimizer sees: %s (%d dims)\n",
              tuner.adapter().name().c_str(),
              tuner.adapter().search_space().num_dims());

  SessionResult result = tuner.Run();

  std::printf("\ndefault throughput : %8.0f reqs/sec\n",
              result.default_performance);
  std::printf("best throughput    : %8.0f reqs/sec  (%+.1f%%)\n",
              result.best_performance,
              100.0 * (result.best_performance / result.default_performance -
                       1.0));

  std::printf("\nbest-so-far curve (every 10 iterations):\n");
  auto curve = result.kb.BestSoFarMeasured();
  for (size_t i = 9; i < curve.size(); i += 10) {
    std::printf("  iter %3zu: %8.0f\n", i + 1, curve[i]);
  }

  std::printf("\nheadline knobs of the best configuration:\n");
  const ConfigSpace& space = db.config_space();
  for (const char* name :
       {"shared_buffers", "work_mem", "synchronous_commit",
        "full_page_writes", "max_wal_size", "backend_flush_after",
        "autovacuum_vacuum_scale_factor", "commit_delay"}) {
    int idx = space.IndexOf(name);
    const KnobSpec& spec = space.knob(idx);
    if (spec.type == KnobType::kCategorical) {
      std::printf("  %-34s %s\n", name,
                  spec.categories[static_cast<int>(result.best_config[idx])]
                      .c_str());
    } else {
      std::printf("  %-34s %g %s\n", name, result.best_config[idx],
                  spec.unit.c_str());
    }
  }

  // The deployment artifact: a postgresql.conf for the tuned config.
  std::string conf = dbsim::EmitPostgresConf(space, result.best_config);
  std::printf("\npostgresql.conf preview (first lines):\n");
  size_t pos = 0;
  for (int line = 0; line < 6 && pos != std::string::npos; ++line) {
    size_t next = conf.find('\n', pos);
    std::printf("  %s\n", conf.substr(pos, next - pos).c_str());
    pos = next == std::string::npos ? next : next + 1;
  }
  return 0;
}
