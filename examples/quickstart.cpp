// Quickstart: tune the simulated PostgreSQL v9.6 for YCSB-A with the
// full LlamaTune pipeline (HeSBO-16 projection, 20% special-value
// biasing, K=10,000 bucketization) driving a SMAC optimizer.
//
//   build/examples/quickstart
//
// This is the minimal end-to-end use of the public API:
//   1. pick an ObjectiveFunction (here: the bundled DBMS simulator),
//   2. wrap its knob space in a SpaceAdapter (LlamaTuneAdapter),
//   3. pick an Optimizer over the adapter's search space,
//   4. drive the loop with TuningSession.

#include <cstdio>

#include "src/core/llamatune_adapter.h"
#include "src/core/tuning_session.h"
#include "src/dbsim/pg_conf.h"
#include "src/dbsim/simulated_postgres.h"
#include "src/optimizer/smac.h"

using namespace llamatune;

int main() {
  // 1. The system under tuning: simulated PostgreSQL running YCSB-A.
  dbsim::SimulatedPostgres db(dbsim::YcsbA(), {});
  std::printf("Tuning %s on simulated PostgreSQL v9.6 (%d knobs, %zu "
              "hybrid)\n",
              db.workload().name.c_str(), db.config_space().num_knobs(),
              db.config_space().hybrid_knob_indices().size());

  // 2. LlamaTune's synthetic low-dimensional view of the knob space.
  LlamaTuneOptions lt_options;  // paper defaults
  LlamaTuneAdapter adapter(&db.config_space(), lt_options);
  std::printf("Optimizer sees: %s (%d dims)\n", adapter.name().c_str(),
              adapter.search_space().num_dims());

  // 3. SMAC over the low-dimensional space.
  SmacOptimizer optimizer(adapter.search_space(), SmacOptions{}, /*seed=*/42);

  // 4. Run 100 iterations (the first 10 are the LHS initial design).
  SessionOptions session_options;
  session_options.num_iterations = 100;
  TuningSession session(&db, &adapter, &optimizer, session_options);
  SessionResult result = session.Run();

  std::printf("\ndefault throughput : %8.0f reqs/sec\n",
              result.default_performance);
  std::printf("best throughput    : %8.0f reqs/sec  (%+.1f%%)\n",
              result.best_performance,
              100.0 * (result.best_performance / result.default_performance -
                       1.0));

  std::printf("\nbest-so-far curve (every 10 iterations):\n");
  auto curve = result.kb.BestSoFarMeasured();
  for (size_t i = 9; i < curve.size(); i += 10) {
    std::printf("  iter %3zu: %8.0f\n", i + 1, curve[i]);
  }

  std::printf("\nheadline knobs of the best configuration:\n");
  const ConfigSpace& space = db.config_space();
  for (const char* name :
       {"shared_buffers", "work_mem", "synchronous_commit",
        "full_page_writes", "max_wal_size", "backend_flush_after",
        "autovacuum_vacuum_scale_factor", "commit_delay"}) {
    int idx = space.IndexOf(name);
    const KnobSpec& spec = space.knob(idx);
    if (spec.type == KnobType::kCategorical) {
      std::printf("  %-34s %s\n", name,
                  spec.categories[static_cast<int>(result.best_config[idx])]
                      .c_str());
    } else {
      std::printf("  %-34s %g %s\n", name, result.best_config[idx],
                  spec.unit.c_str());
    }
  }

  // The deployment artifact: a postgresql.conf for the tuned config.
  std::string conf = dbsim::EmitPostgresConf(space, result.best_config);
  std::printf("\npostgresql.conf preview (first lines):\n");
  size_t pos = 0;
  for (int line = 0; line < 6 && pos != std::string::npos; ++line) {
    size_t next = conf.find('\n', pos);
    std::printf("  %s\n", conf.substr(pos, next - pos).c_str());
    pos = next == std::string::npos ? next : next + 1;
  }
  return 0;
}
